"""Equivalence and property proofs over traced allocator netlists.

Two layers of proof live here.  :func:`check_netlist` takes a netlist
plus the :class:`~repro.hw.trace.BuildTrace` recorded while it was
built and proves, component by component, that the gates compute the
behavioural :mod:`repro.core` semantics:

* every traced arbiter's grant cone is swept exhaustively against the
  packed oracle for **each reachable priority state** (round-robin
  thermometer masks, matrix priority triangles), and its next-state
  logic is proved equal to the behavioural update **from any state**
  (induction step) -- together those extend the per-state equivalence
  to every cycle from reset;
* wavefront blocks are proved by exact structural matching of the
  replicated tile arrays (the tile template *is* the greedy wave
  recurrence, so a full template match is a semantic proof at widths
  no packed sweep can reach), plus packed per-copy sweeps at small
  widths;
* the declarative properties of :mod:`.properties` are evaluated on
  the same packed sweeps, so "holds" means holds on every input in
  every reachable state.

:func:`e2e_check_matrix` is the second layer: reduced-configuration
allocators are compared **end to end** against ``allocate()`` over
every legal stimulus vector (packed one-vector-per-lane), including
multi-cycle lockstep runs for the switch allocators whose register
files the per-component induction has already certified.

A trace records net locations only, never logic, so a corrupted trace
can cause a spurious *failure* but never a spurious pass: every claim
below is re-proved against the gates themselves.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..analysis.findings import Finding
from ..core.speculative import SpeculativeSwitchAllocator
from ..core.switch_allocator import SwitchAllocator
from ..core.vc_allocator import VCAllocator, VCRequest
from ..core.vc_partition import VCPartition
from ..hw.cells import CELL_INDEX
from ..hw.netlist import KIND_CONST0, KIND_CONST1, Netlist
from ..hw.sw_alloc_gates import build_switch_allocator_netlist
from ..hw.trace import (
    ArbiterTrace,
    BuildTrace,
    PreselectTrace,
    TreeTrace,
    WavefrontTrace,
    tracing,
)
from ..hw.vc_alloc_gates import build_vc_allocator_netlist
from .engine import (
    MAX_EXHAUSTIVE_BITS,
    ConeEvaluator,
    check_or_cone,
    decode_lane,
    first_failing_lane,
    or_cone_leaves,
    packed_eval,
    walk_buf_chain,
)
from .oracles import (
    fixed_priority_packed,
    matrix_grants_packed,
    rr_grants_packed,
    rr_mask_states,
    wavefront_grants_packed,
)
from .properties import ARBITER_PROPERTIES, check_property, wavefront_properties

__all__ = ["check_netlist", "e2e_check_matrix"]

_AND2 = CELL_INDEX["AND2"]
_AND3 = CELL_INDEX["AND3"]
_INV = CELL_INDEX["INV"]

#: Findings reported per component before truncating: one real defect
#: tends to fail many states/lanes and drowning the report helps nobody.
_MAX_COMPONENT_FINDINGS = 6

#: Reachable matrix states sampled (as priority permutations) when the
#: pair count makes full enumeration infeasible.
_MATRIX_PERM_SAMPLES_SMALL = 24  # n <= 8
_MATRIX_PERM_SAMPLES_LARGE = 12


def _err(rule: str, scope: str, location: str, message: str) -> Finding:
    return Finding(
        rule=rule,
        severity="error",
        scope=scope,
        location=location,
        message=message,
    )


def _req_word(nl: Netlist, ev: ConeEvaluator, net: int, full: int) -> int:
    """Packed word of a request net: constants fold, leaves pattern."""
    k = nl.kinds[net]
    if k == KIND_CONST0:
        return 0
    if k == KIND_CONST1:
        return full
    return ev.leaf_word(net)


def _perm_states(n: int) -> List[List[int]]:
    """Reachable matrix priority states as rank permutations.

    The matrix arbiter's reachable states are exactly the total orders
    ("least recently served" is a queue): register ``(i, j)`` holds
    ``rank[i] < rank[j]``.  All ``n!`` permutations for small ``n``,
    a seeded sample beyond -- the work-conserving property must only
    be asserted on these (cyclic tournament states can deny everyone,
    but no sequence of updates from reset ever produces a cycle).
    """
    if n <= 5:
        return [list(p) for p in itertools.permutations(range(n))]
    rng = random.Random(0)
    count = _MATRIX_PERM_SAMPLES_SMALL if n <= 8 else _MATRIX_PERM_SAMPLES_LARGE
    return [rng.sample(range(n), n) for _ in range(count)]


def _perm_reg_bits(pairs: Sequence[Tuple[int, int]], perm: Sequence[int]) -> List[int]:
    rank = {v: idx for idx, v in enumerate(perm)}
    return [1 if rank[i] < rank[j] else 0 for i, j in pairs]


# ----------------------------------------------------------------------
# Flat arbiters (fixed / round-robin / matrix)
# ----------------------------------------------------------------------
def _grant_cone(
    nl: Netlist,
    a: ArbiterTrace,
    scope: str,
    loc: str,
) -> Tuple[Optional[ConeEvaluator], List[Finding]]:
    """Evaluator for the grant cone cut at the requests, with the leaf
    discipline proved: the cone may read nothing beyond the traced
    requests and priority registers, and must read every register."""
    try:
        ev = ConeEvaluator(nl, a.grant_nets, cut=a.request_nets)
    except Exception as exc:  # malformed/mutated netlist
        return None, [_err("VER-STRUCT", scope, loc, f"grant cone unusable: {exc}")]
    allowed = set(a.request_nets) | set(a.state_regs)
    extra = sorted(set(ev.leaves) - allowed)
    if extra:
        return None, [
            _err(
                "VER-TRACE",
                scope,
                loc,
                f"grant logic reads nets {extra[:8]} outside the traced "
                "requests and priority registers",
            )
        ]
    leafset = set(ev.leaves)
    missing = [r for r in a.state_regs if r not in leafset]
    if missing:
        return None, [
            _err(
                "VER-STRUCT",
                scope,
                loc,
                f"grant logic ignores priority register(s) {missing[:8]}",
            )
        ]
    return ev, []


def _check_fixed(
    nl: Netlist, a: ArbiterTrace, scope: str, loc: str
) -> List[Finding]:
    n = len(a.request_nets)
    ev, findings = _grant_cone(nl, a, scope, loc)
    if ev is None:
        return findings
    if ev.num_vars > MAX_EXHAUSTIVE_BITS:
        return [
            _err(
                "VER-EQUIV",
                scope,
                loc,
                f"{ev.num_vars} distinct request nets exceed the "
                f"exhaustive sweep limit ({MAX_EXHAUSTIVE_BITS})",
            )
        ]
    full = (1 << ev.num_lanes) - 1
    vals = ev.evaluate_all()
    req_words = [_req_word(nl, ev, r, full) for r in a.request_nets]
    want = fixed_priority_packed(req_words, full)
    got = [vals[g] for g in a.grant_nets]
    for i in range(n):
        if got[i] != want[i]:
            lane = first_failing_lane(got[i] ^ want[i])
            findings.append(
                _err(
                    "VER-EQUIV",
                    scope,
                    loc,
                    f"grant[{i}] diverges from behavioural fixed-priority "
                    f"select at lane {lane} "
                    f"(assignment {decode_lane(lane, ev.num_vars)})",
                )
            )
    for prop in ARBITER_PROPERTIES:
        viol = check_property(prop, n, req_words, got, full)
        if viol:
            findings.append(
                _err(
                    "VER-PROP",
                    scope,
                    f"{loc}/{prop.name}",
                    f"property violated at lane {first_failing_lane(viol)} "
                    f"({prop.description}; {prop.paper_ref})",
                )
            )
    return findings


def _mask_ring_induction(
    nl: Netlist,
    scope: str,
    loc: str,
    regs: Sequence[int],
    grant_nets: Sequence[int],
    enable: Optional[int],
    and_any_grant: bool,
) -> List[Finding]:
    """Induction step for the rotate-past-the-winner thermometer mask.

    Proves every mask register's next-state function equals
    ``upd ? prefix_or(grants)[i-1] : mask[i]`` for **all** assignments
    of the cut nets (grants, the register, the enable), where ``upd``
    is ``OR(grants) & enable`` for round-robin arbiters
    (``and_any_grant=True``) or the raw enable for the wavefront
    preselect, whose enable is itself the grant OR.  Treating the cut
    nets as free variables proves the identity over a superset of the
    reachable assignments, so combined with the per-state grant
    equivalence it pins the state trajectory from reset.
    """
    findings: List[Finding] = []
    grants = list(dict.fromkeys(grant_nets))
    cut = list(grants)
    if enable is not None and enable not in cut:
        cut.append(enable)
    for i, reg in enumerate(regs):
        d = nl.reg_d.get(reg)
        if d is None:
            findings.append(
                _err("VER-STATE", scope, loc, f"mask register {reg} has no next-state driver")
            )
            continue
        ev = ConeEvaluator(nl, [d], cut=cut + [reg])
        allowed = set(cut) | {reg}
        extra = sorted(set(ev.leaves) - allowed)
        if extra:
            findings.append(
                _err(
                    "VER-STATE",
                    scope,
                    loc,
                    f"mask bit {i}: next-state cone reads nets {extra[:8]} "
                    "outside the grants/state/enable cut",
                )
            )
            continue
        if and_any_grant or enable is None:
            required = list(grants)
        else:
            required = list(dict.fromkeys(grant_nets[:i]))
        required.append(reg)
        if enable is not None:
            required.append(enable)
        leafset = set(ev.leaves)
        missing = [x for x in required if x not in leafset]
        if missing:
            findings.append(
                _err(
                    "VER-STATE",
                    scope,
                    loc,
                    f"mask bit {i}: next-state logic does not read required "
                    f"nets {missing[:8]}",
                )
            )
            continue
        if ev.num_vars > MAX_EXHAUSTIVE_BITS:
            findings.append(
                _err(
                    "VER-STATE",
                    scope,
                    loc,
                    f"mask bit {i}: induction cut has {ev.num_vars} free "
                    "variables, beyond the exhaustive limit",
                )
            )
            continue
        full = (1 << ev.num_lanes) - 1
        got = ev.evaluate_all()[d]
        # Grants past index i need not reach cone i when the enable is
        # a separate net (they feed only the enable OR); their words are
        # never consumed on that path, so 0 is a safe stand-in.
        gw = [ev.leaf_word(g) if g in leafset else 0 for g in grant_nets]
        regw = ev.leaf_word(reg)
        enw = ev.leaf_word(enable) if enable is not None else None
        any_g = 0
        for w in gw:
            any_g |= w
        if and_any_grant:
            upd = any_g if enw is None else any_g & enw
        else:
            upd = enw if enw is not None else any_g
        pre = 0
        for w in gw[:i]:
            pre |= w
        exp = (upd & pre) | ((full ^ upd) & regw)
        if got != exp:
            lane = first_failing_lane(got ^ exp)
            findings.append(
                _err(
                    "VER-STATE",
                    scope,
                    loc,
                    f"mask bit {i}: next-state function diverges from the "
                    f"rotate-on-grant update at induction lane {lane} "
                    f"(assignment {decode_lane(lane, ev.num_vars)} over "
                    f"cut nets {ev.free_vars()})",
                )
            )
    return findings


def _check_rr(nl: Netlist, a: ArbiterTrace, scope: str, loc: str) -> List[Finding]:
    n = len(a.request_nets)
    if not a.finished:
        return [
            _err(
                "VER-TRACE",
                scope,
                loc,
                "arbiter was never finished: no priority update was attached",
            )
        ]
    ev, findings = _grant_cone(nl, a, scope, loc)
    if ev is None:
        return findings
    regs = a.state_regs
    for pointer, bits in rr_mask_states(n):
        ev.pin(dict(zip(regs, bits)))
        if ev.num_vars > MAX_EXHAUSTIVE_BITS:
            findings.append(
                _err(
                    "VER-EQUIV",
                    scope,
                    loc,
                    f"{ev.num_vars} distinct request nets exceed the "
                    f"exhaustive sweep limit ({MAX_EXHAUSTIVE_BITS})",
                )
            )
            return findings
        full = (1 << ev.num_lanes) - 1
        vals = ev.evaluate_all()
        req_words = [_req_word(nl, ev, r, full) for r in a.request_nets]
        want = rr_grants_packed(req_words, bits, full)
        got = [vals[g] for g in a.grant_nets]
        for i in range(n):
            if got[i] != want[i]:
                lane = first_failing_lane(got[i] ^ want[i])
                findings.append(
                    _err(
                        "VER-EQUIV",
                        scope,
                        loc,
                        f"grant[{i}] diverges from behavioural round-robin "
                        f"at pointer {pointer}, lane {lane} "
                        f"(assignment {decode_lane(lane, ev.num_vars)})",
                    )
                )
                break  # one witness per state; other states may differ
        for prop in ARBITER_PROPERTIES:
            viol = check_property(prop, n, req_words, got, full)
            if viol:
                findings.append(
                    _err(
                        "VER-PROP",
                        scope,
                        f"{loc}/{prop.name}",
                        f"property violated at pointer {pointer}, lane "
                        f"{first_failing_lane(viol)} ({prop.description})",
                    )
                )
        if len(findings) >= _MAX_COMPONENT_FINDINGS:
            return findings
    findings.extend(
        _mask_ring_induction(
            nl, scope, loc, regs, a.grant_nets, a.update_enable, and_any_grant=True
        )
    )
    return findings


def _matrix_exhaustive(
    nl: Netlist, a: ArbiterTrace, scope: str, loc: str, ev: ConeEvaluator
) -> List[Finding]:
    """Full sweep: all request assignments x all triangle states at once.

    Safe to run over *unreachable* (cyclic) triangle states for the
    equivalence and for grant-implies-request / at-most-one-grant; work
    conservation genuinely fails on cyclic tournaments, so it is only
    asserted on the reachable permutation states afterwards.
    """
    findings: List[Finding] = []
    n = len(a.request_nets)
    regs = a.state_regs
    full = (1 << ev.num_lanes) - 1
    vals = ev.evaluate_all()
    req_words = [_req_word(nl, ev, r, full) for r in a.request_nets]
    beats: Dict[Tuple[int, int], int] = {}
    for (i, j), reg in zip(a.pairs, regs):
        w = ev.leaf_word(reg)
        beats[(i, j)] = w
        beats[(j, i)] = full ^ w
    want = matrix_grants_packed(req_words, beats, full)
    got = [vals[g] for g in a.grant_nets]
    for i in range(n):
        if got[i] != want[i]:
            lane = first_failing_lane(got[i] ^ want[i])
            findings.append(
                _err(
                    "VER-EQUIV",
                    scope,
                    loc,
                    f"grant[{i}] diverges from the behavioural matrix select "
                    f"at lane {lane} (assignment "
                    f"{decode_lane(lane, ev.num_vars)} over {ev.free_vars()})",
                )
            )
            if len(findings) >= _MAX_COMPONENT_FINDINGS:
                return findings
    for prop in ARBITER_PROPERTIES[:2]:  # safe on any antisymmetric state
        viol = check_property(prop, n, req_words, got, full)
        if viol:
            findings.append(
                _err(
                    "VER-PROP",
                    scope,
                    f"{loc}/{prop.name}",
                    f"property violated at lane {first_failing_lane(viol)} "
                    f"({prop.description})",
                )
            )
    # Work conservation only holds on reachable (total-order) states.
    wc = ARBITER_PROPERTIES[2]
    for perm in _perm_states(n):
        ev.pin(dict(zip(regs, _perm_reg_bits(a.pairs, perm))))
        pfull = (1 << ev.num_lanes) - 1
        pvals = ev.evaluate_all()
        preq = [_req_word(nl, ev, r, pfull) for r in a.request_nets]
        pgot = [pvals[g] for g in a.grant_nets]
        viol = check_property(wc, n, preq, pgot, pfull)
        if viol:
            findings.append(
                _err(
                    "VER-PROP",
                    scope,
                    f"{loc}/{wc.name}",
                    f"work conservation violated in reachable priority state "
                    f"{perm} at lane {first_failing_lane(viol)}",
                )
            )
            break
    return findings


def _matrix_structural(
    nl: Netlist, a: ArbiterTrace, scope: str, loc: str
) -> List[Finding]:
    """Template proof for matrix arbiters too wide to sweep.

    The builder's deny tree literally transcribes the oracle formula
    ``gnt[i] = req[i] & ~OR_j(req[j] & beats[j][i])`` with the lower
    triangle derived by a single INV; matching every gate kind and
    fanin against that template is therefore a *complete* equivalence
    proof (no approximation), valid at any width.
    """
    findings: List[Finding] = []
    n = len(a.request_nets)
    kinds = nl.kinds
    fanins = nl.fanins
    reg_of = dict(zip(a.pairs, a.state_regs))
    if len(a.deny_nets) != n or len(a.deny_terms) != n:
        return [
            _err(
                "VER-TRACE",
                scope,
                loc,
                "matrix deny tree was not traced; cannot check structurally",
            )
        ]

    def bad(msg: str) -> None:
        findings.append(_err("VER-STRUCT", scope, loc, msg))

    for i in range(n):
        terms = a.deny_terms[i]
        if sorted(j for j, _, _ in terms) != [j for j in range(n) if j != i]:
            bad(f"deny row {i} does not cover every competing input")
            continue
        term_nets: List[int] = []
        for j, term, beat in terms:
            if j < i:
                if beat != reg_of[(j, i)]:
                    bad(
                        f"deny({j}->{i}): beats net {beat} is not priority "
                        f"register w[{j}][{j}<{i}]"
                    )
                    continue
            else:
                q = reg_of[(i, j)]
                if kinds[beat] != _INV or fanins[beat][0] != q:
                    bad(
                        f"deny({j}->{i}): beats net {beat} is not the "
                        f"inversion of priority register w[{i}][{j}]"
                    )
                    continue
            if kinds[term] != _AND2 or fanins[term] != (a.request_nets[j], beat):
                bad(
                    f"deny({j}->{i}): term {term} is not "
                    f"AND2(request[{j}], beats)"
                )
                continue
            term_nets.append(term)
        deny = a.deny_nets[i]
        if deny is None:
            bad(f"deny row {i} has no OR root")
            continue
        err = check_or_cone(nl, deny, term_nets)
        if err:
            bad(f"deny row {i} OR tree: {err}")
            continue
        g = a.grant_nets[i]
        if (
            kinds[g] != _AND2
            or fanins[g][0] != a.request_nets[i]
            or kinds[fanins[g][1]] != _INV
            or fanins[fanins[g][1]][0] != deny
        ):
            bad(f"grant[{i}] is not AND2(request[{i}], INV(deny))")
        if len(findings) >= _MAX_COMPONENT_FINDINGS:
            return findings
    return findings


def _matrix_oracle_properties(a: ArbiterTrace, scope: str, loc: str) -> List[Finding]:
    """Property sweep for wide matrix arbiters, on the oracle formula.

    The structural proof established grant-cone == oracle formula
    exactly, so property counterexamples transfer 1:1 between the two;
    checking the formula over 2^16 seeded random request lanes per
    sampled reachable state avoids re-walking a 1000+-gate cone per
    state at widths where no exhaustive request sweep exists anyway.
    """
    findings: List[Finding] = []
    n = len(a.request_nets)
    rng = random.Random(0)
    lanes = 1 << 16
    full = (1 << lanes) - 1
    req_words = [rng.getrandbits(lanes) for _ in range(n)]
    for perm in _perm_states(n):
        bits = _perm_reg_bits(a.pairs, perm)
        beats: Dict[Tuple[int, int], int] = {}
        for (i, j), b in zip(a.pairs, bits):
            beats[(i, j)] = full if b else 0
            beats[(j, i)] = 0 if b else full
        gnt = matrix_grants_packed(req_words, beats, full)
        for prop in ARBITER_PROPERTIES:
            viol = check_property(prop, n, req_words, gnt, full)
            if viol:
                findings.append(
                    _err(
                        "VER-PROP",
                        scope,
                        f"{loc}/{prop.name}",
                        f"property violated in reachable priority state "
                        f"{perm} ({prop.description})",
                    )
                )
        if len(findings) >= _MAX_COMPONENT_FINDINGS:
            break
    return findings


def _matrix_induction(
    nl: Netlist, a: ArbiterTrace, scope: str, loc: str
) -> List[Finding]:
    """Induction step for every triangle register:
    ``w[i][j]' = upd ? ((w[i][j] & ~gnt[i]) | gnt[j]) : w[i][j]``."""
    findings: List[Finding] = []
    en = a.update_enable
    for (i, j), reg in zip(a.pairs, a.state_regs):
        d = nl.reg_d.get(reg)
        if d is None:
            findings.append(
                _err("VER-STATE", scope, loc, f"w[{i}][{j}] has no next-state driver")
            )
            continue
        cut = list(dict.fromkeys([reg, a.grant_nets[i], a.grant_nets[j]]))
        if en is not None:
            cut.append(en)
        ev = ConeEvaluator(nl, [d], cut=cut)
        extra = sorted(set(ev.leaves) - set(cut))
        if extra:
            findings.append(
                _err(
                    "VER-STATE",
                    scope,
                    loc,
                    f"w[{i}][{j}]: next-state cone reads nets {extra[:8]} "
                    "outside the grants/state/enable cut",
                )
            )
            continue
        leafset = set(ev.leaves)
        missing = [x for x in cut if x not in leafset]
        if missing:
            findings.append(
                _err(
                    "VER-STATE",
                    scope,
                    loc,
                    f"w[{i}][{j}]: next-state logic does not read required "
                    f"nets {missing[:8]}",
                )
            )
            continue
        full = (1 << ev.num_lanes) - 1
        got = ev.evaluate_all()[d]
        qw = ev.leaf_word(reg)
        giw = ev.leaf_word(a.grant_nets[i])
        gjw = ev.leaf_word(a.grant_nets[j])
        nxt = (qw & (full ^ giw)) | gjw
        if en is not None:
            enw = ev.leaf_word(en)
            exp = (enw & nxt) | ((full ^ enw) & qw)
        else:
            exp = nxt
        if got != exp:
            lane = first_failing_lane(got ^ exp)
            findings.append(
                _err(
                    "VER-STATE",
                    scope,
                    loc,
                    f"w[{i}][{j}]: next-state function diverges from the "
                    f"loser-to-winner update at induction lane {lane}",
                )
            )
            if len(findings) >= _MAX_COMPONENT_FINDINGS:
                return findings
    return findings


def _check_matrix(nl: Netlist, a: ArbiterTrace, scope: str, loc: str) -> List[Finding]:
    n = len(a.request_nets)
    if not a.finished:
        return [
            _err(
                "VER-TRACE",
                scope,
                loc,
                "arbiter was never finished: no priority update was attached",
            )
        ]
    npairs = n * (n - 1) // 2
    if len(a.pairs) != npairs or len(a.state_regs) != npairs:
        return [
            _err(
                "VER-TRACE",
                scope,
                loc,
                f"expected {npairs} triangle registers, trace has "
                f"{len(a.state_regs)}",
            )
        ]
    ev, findings = _grant_cone(nl, a, scope, loc)
    if ev is None:
        return findings
    if ev.num_vars <= MAX_EXHAUSTIVE_BITS:
        findings.extend(_matrix_exhaustive(nl, a, scope, loc, ev))
    else:
        findings.extend(_matrix_structural(nl, a, scope, loc))
        if not findings:
            # Sound only because the structural proof above is complete.
            findings.extend(_matrix_oracle_properties(a, scope, loc))
    findings.extend(_matrix_induction(nl, a, scope, loc))
    return findings


# ----------------------------------------------------------------------
# Tree arbiters
# ----------------------------------------------------------------------
def _check_tree(
    nl: Netlist, trace: BuildTrace, t: TreeTrace, scope: str, loc: str
) -> List[Finding]:
    """Compositional proof of the two-level tree round-robin.

    The leaf and top round-robin instances are proved individually by
    :func:`_check_rr` (they appear in ``trace.arbiters``); here we prove
    the glue: group-any really is the OR of the group's requests, each
    level is wired to the nets the trace claims, and every final grant
    is exactly ``AND2(local, top)``.  Grant⊆request and at-most-one
    then follow compositionally: a final grant needs its group's local
    grant (⊆ its request) and the top grant of that group, and the top
    level grants at most one group while each group grants at most one
    member.
    """
    findings: List[Finding] = []
    kinds = nl.kinds
    fanins = nl.fanins

    def find_rr(req: List[int], gnt: List[int]) -> Optional[ArbiterTrace]:
        for arb in trace.arbiters:
            if (
                arb.kind == "rr"
                and arb.request_nets == req
                and arb.grant_nets == gnt
            ):
                return arb
        return None

    for g, sub in enumerate(t.group_request_nets):
        err = check_or_cone(nl, t.group_any_nets[g], sub)
        if err:
            findings.append(
                _err("VER-STRUCT", scope, loc, f"group {g} any-request OR: {err}")
            )
        if len(sub) == 1:
            if t.local_grant_nets[g] != sub:
                findings.append(
                    _err(
                        "VER-TRACE",
                        scope,
                        loc,
                        f"single-member group {g} grant is not the request "
                        "passthrough",
                    )
                )
        elif find_rr(sub, t.local_grant_nets[g]) is None:
            findings.append(
                _err(
                    "VER-TRACE",
                    scope,
                    loc,
                    f"group {g} local arbiter missing from the trace "
                    "(its equivalence was never proved)",
                )
            )
    if len(t.group_any_nets) > 1 and find_rr(t.group_any_nets, t.top_grant_nets) is None:
        findings.append(
            _err(
                "VER-TRACE",
                scope,
                loc,
                "top-level arbiter missing from the trace",
            )
        )
    pos = 0
    for g, sub in enumerate(t.group_request_nets):
        for k in range(len(sub)):
            gn = t.grant_nets[pos]
            pos += 1
            if kinds[gn] != _AND2 or fanins[gn] != (
                t.local_grant_nets[g][k],
                t.top_grant_nets[g],
            ):
                findings.append(
                    _err(
                        "VER-STRUCT",
                        scope,
                        loc,
                        f"final grant for group {g} member {k} is not "
                        "AND2(local grant, top grant)",
                    )
                )
    return findings


# ----------------------------------------------------------------------
# Wavefront blocks
# ----------------------------------------------------------------------
def _check_token(
    nl: Netlist, out: Optional[int], token_in: Optional[int], gnt: int
) -> bool:
    """Token kill template: ``out = INV(gnt)`` (fresh token) or
    ``AND2(token_in, INV(gnt))``."""
    if out is None:
        return False
    kinds = nl.kinds
    fanins = nl.fanins
    if token_in is None:
        return kinds[out] == _INV and fanins[out][0] == gnt
    if kinds[out] != _AND2 or fanins[out][0] != token_in:
        return False
    ng = fanins[out][1]
    return kinds[ng] == _INV and fanins[ng][0] == gnt


def _check_wavefront(
    nl: Netlist, w: WavefrontTrace, scope: str, loc: str
) -> List[Finding]:
    """Structural proof of the replicated wavefront block.

    The tile template (grant = request AND row-token AND column-token,
    tokens killed downstream of a grant, cells visited in wave order)
    *is* the greedy maximal-matching recurrence of
    :func:`repro.verify.oracles.wavefront_grants_packed`, so an exact
    template match of every tile in every priority copy, plus the
    pointer one-hot mux on the outputs and the enable-gated pointer
    ring induction, is a complete semantic proof at any width.  At
    widths where ``n*n <= MAX_EXHAUSTIVE_BITS`` a packed per-copy sweep
    additionally cross-checks the template against the oracle and
    evaluates the matching properties -- belt and braces for the small
    configurations the mutation harness exercises.
    """
    findings: List[Finding] = []
    n = w.n
    kinds = nl.kinds
    flat = [w.request_nets[i][j] for i in range(n) for j in range(n)]
    live = [r for r in flat if kinds[r] != KIND_CONST0]
    if w.rotate_en is None:
        return [_err("VER-TRACE", scope, loc, "rotate enable was not traced")]
    err = check_or_cone(nl, w.rotate_en, live)
    if err:
        findings.append(
            _err("VER-STRUCT", scope, loc, f"rotate enable OR: {err}")
        )

    # Pointer ring induction: ptr[d]' = en ? ptr[d-1] : ptr[d].
    for d in range(n):
        reg = w.ptr_regs[d]
        dn = nl.reg_d.get(reg)
        if dn is None:
            findings.append(
                _err("VER-STATE", scope, loc, f"pointer bit {d} has no next-state driver")
            )
            continue
        prev = w.ptr_regs[(d - 1) % n]
        cut = [reg, prev, w.rotate_en]
        ev = ConeEvaluator(nl, [dn], cut=cut)
        extra = sorted(set(ev.leaves) - set(cut))
        missing = [x for x in cut if x not in set(ev.leaves)]
        if extra or missing:
            findings.append(
                _err(
                    "VER-STATE",
                    scope,
                    loc,
                    f"pointer bit {d}: next-state cone reads {extra[:8]} "
                    f"and misses {missing[:8]} relative to the "
                    "ring/enable cut",
                )
            )
            continue
        full = (1 << ev.num_lanes) - 1
        got = ev.evaluate_all()[dn]
        enw = ev.leaf_word(w.rotate_en)
        exp = (enw & ev.leaf_word(prev)) | ((full ^ enw) & ev.leaf_word(reg))
        if got != exp:
            findings.append(
                _err(
                    "VER-STATE",
                    scope,
                    loc,
                    f"pointer bit {d}: next-state function is not the "
                    "enable-gated one-hot rotation",
                )
            )

    # Tile arrays, one copy per priority diagonal.
    for d in range(n):
        tiles = w.copies[d] if d < len(w.copies) else []
        cloc = f"{loc}/copy{d}"
        if len(tiles) != n * n:
            findings.append(
                _err(
                    "VER-STRUCT",
                    scope,
                    cloc,
                    f"expected {n * n} tiles, trace has {len(tiles)}",
                )
            )
            continue
        cur_x: Dict[int, int] = {}
        cur_y: Dict[int, int] = {}
        seen = set()
        ok = True
        for t in tiles:
            if t.k != (t.i + t.j - d) % n:
                findings.append(
                    _err(
                        "VER-STRUCT",
                        scope,
                        cloc,
                        f"cell ({t.i},{t.j}) evaluated in wave {t.k}, not "
                        f"its diagonal distance {(t.i + t.j - d) % n}",
                    )
                )
                ok = False
                break
            if walk_buf_chain(nl, t.req_leaf) != walk_buf_chain(
                nl, w.request_nets[t.i][t.j]
            ):
                findings.append(
                    _err(
                        "VER-STRUCT",
                        scope,
                        cloc,
                        f"cell ({t.i},{t.j}) reads a request other than "
                        f"req[{t.i}][{t.j}]",
                    )
                )
                ok = False
                break
            if t.x_in != cur_x.get(t.i) or t.y_in != cur_y.get(t.j):
                findings.append(
                    _err(
                        "VER-STRUCT",
                        scope,
                        cloc,
                        f"cell ({t.i},{t.j}) breaks the row/column "
                        "availability-token chain",
                    )
                )
                ok = False
                break
            g = t.gnt
            if t.x_in is None and t.y_in is None:
                good = g == t.req_leaf
            elif t.x_in is None:
                good = kinds[g] == _AND2 and nl.fanins[g] == (t.req_leaf, t.y_in)
            elif t.y_in is None:
                good = kinds[g] == _AND2 and nl.fanins[g] == (t.req_leaf, t.x_in)
            else:
                good = kinds[g] == _AND3 and nl.fanins[g] == (
                    t.req_leaf,
                    t.x_in,
                    t.y_in,
                )
            if not good:
                findings.append(
                    _err(
                        "VER-STRUCT",
                        scope,
                        cloc,
                        f"cell ({t.i},{t.j}) grant is not request AND "
                        "row-token AND column-token",
                    )
                )
                ok = False
                break
            if t.k < n - 1:
                if not _check_token(nl, t.x_out, t.x_in, g) or not _check_token(
                    nl, t.y_out, t.y_in, g
                ):
                    findings.append(
                        _err(
                            "VER-STRUCT",
                            scope,
                            cloc,
                            f"cell ({t.i},{t.j}) does not kill its "
                            "row/column tokens on grant",
                        )
                    )
                    ok = False
                    break
                cur_x[t.i] = t.x_out
                cur_y[t.j] = t.y_out
            if w.copy_grant_nets[d][t.i][t.j] != g:
                findings.append(
                    _err(
                        "VER-TRACE",
                        scope,
                        cloc,
                        f"copy grant net for cell ({t.i},{t.j}) disagrees "
                        "with the tile trace",
                    )
                )
                ok = False
                break
            seen.add((t.i, t.j))
        if ok and len(seen) != n * n:
            findings.append(
                _err(
                    "VER-STRUCT",
                    scope,
                    cloc,
                    "tile array does not cover every request cell",
                )
            )
        if len(findings) >= _MAX_COMPONENT_FINDINGS:
            return findings

    # Output one-hot mux: grant[i][j] = OR_d(AND2(ptr[d], copy_d grant)).
    for i in range(n):
        for j in range(n):
            leaves, lerr = or_cone_leaves(nl, w.grant_nets[i][j])
            if lerr:
                findings.append(
                    _err("VER-STRUCT", scope, loc, f"output mux ({i},{j}): {lerr}")
                )
                continue
            seen_d = set()
            good = len(leaves) == n
            for term in leaves:
                if kinds[term] != _AND2:
                    good = False
                    break
                sel, data = nl.fanins[term]
                src = walk_buf_chain(nl, sel)
                try:
                    d = w.ptr_regs.index(src)
                except ValueError:
                    good = False
                    break
                if d in seen_d or data != w.copy_grant_nets[d][i][j]:
                    good = False
                    break
                seen_d.add(d)
            if not (good and len(seen_d) == n):
                findings.append(
                    _err(
                        "VER-STRUCT",
                        scope,
                        loc,
                        f"output ({i},{j}) is not the pointer-selected "
                        "one-hot mux of the priority copies",
                    )
                )
            if len(findings) >= _MAX_COMPONENT_FINDINGS:
                return findings

    # Packed cross-check + matching properties at sweepable widths.
    if n * n <= MAX_EXHAUSTIVE_BITS:
        distinct_live = list(dict.fromkeys(live))
        props = wavefront_properties(n)
        for d in range(n):
            targets = [w.copy_grant_nets[d][i][j] for i in range(n) for j in range(n)]
            ev = ConeEvaluator(nl, targets, cut=distinct_live)
            extra = sorted(set(ev.leaves) - set(distinct_live))
            if extra:
                findings.append(
                    _err(
                        "VER-TRACE",
                        scope,
                        f"{loc}/copy{d}",
                        f"copy grants read nets {extra[:8]} beyond requests",
                    )
                )
                continue
            full = (1 << ev.num_lanes) - 1
            vals = ev.evaluate_all()
            reqw = [
                [_req_word(nl, ev, w.request_nets[i][j], full) for j in range(n)]
                for i in range(n)
            ]
            want = wavefront_grants_packed(reqw, d, full)
            env: Dict[str, int] = {}
            bad_cells = []
            for i in range(n):
                for j in range(n):
                    got = vals[w.copy_grant_nets[d][i][j]]
                    env[f"req[{i},{j}]"] = reqw[i][j]
                    env[f"gnt[{i},{j}]"] = got
                    if got != want[i][j]:
                        bad_cells.append((i, j))
            if bad_cells:
                findings.append(
                    _err(
                        "VER-EQUIV",
                        scope,
                        f"{loc}/copy{d}",
                        f"copy grants diverge from the behavioural wave "
                        f"sweep at cells {bad_cells[:6]}",
                    )
                )
            for name, term in props:
                viol = full ^ term.eval(env, full)
                if viol:
                    findings.append(
                        _err(
                            "VER-PROP",
                            scope,
                            f"{loc}/copy{d}/{name}",
                            f"matching property violated at lane "
                            f"{first_failing_lane(viol)}",
                        )
                    )
            if len(findings) >= _MAX_COMPONENT_FINDINGS:
                return findings
    return findings


# ----------------------------------------------------------------------
# Wavefront-core VC preselect
# ----------------------------------------------------------------------
def _check_preselect(
    nl: Netlist, p: PreselectTrace, scope: str, loc: str
) -> List[Finding]:
    """The per-port VC preselect is a round-robin select replicated per
    output port over a shared mask: prove each replica against the
    round-robin oracle for every reachable mask state, prove the final
    VC grants are the OR-of-AND combine with the crossbar row, and
    prove the shared mask's rotate-on-grant induction step."""
    findings: List[Finding] = []
    if p.update_enable is None:
        return [
            _err("VER-TRACE", scope, loc, "preselect mask update was not traced")
        ]
    regs = p.mask_regs
    V = len(p.grants_v)
    for q, (lines, sels) in enumerate(zip(p.line_nets, p.sel_nets)):
        qloc = f"{loc}/q{q}"
        ev = ConeEvaluator(nl, sels, cut=lines)
        allowed = set(lines) | set(regs)
        extra = sorted(set(ev.leaves) - allowed)
        if extra:
            findings.append(
                _err(
                    "VER-TRACE",
                    scope,
                    qloc,
                    f"selection logic reads nets {extra[:8]} outside the "
                    "request lines and mask",
                )
            )
            continue
        missing = [r for r in regs if r not in set(ev.leaves)]
        if missing:
            findings.append(
                _err(
                    "VER-STRUCT",
                    scope,
                    qloc,
                    f"selection logic ignores mask register(s) {missing[:8]}",
                )
            )
            continue
        for pointer, bits in rr_mask_states(V):
            ev.pin(dict(zip(regs, bits)))
            full = (1 << ev.num_lanes) - 1
            vals = ev.evaluate_all()
            reqw = [_req_word(nl, ev, r, full) for r in lines]
            want = rr_grants_packed(reqw, bits, full)
            got = [vals[s] for s in sels]
            for v in range(V):
                if got[v] != want[v]:
                    findings.append(
                        _err(
                            "VER-EQUIV",
                            scope,
                            qloc,
                            f"select[{v}] diverges from behavioural "
                            f"round-robin at pointer {pointer}",
                        )
                    )
                    break
            for prop in ARBITER_PROPERTIES:
                viol = check_property(prop, V, reqw, got, full)
                if viol:
                    findings.append(
                        _err(
                            "VER-PROP",
                            scope,
                            f"{qloc}/{prop.name}",
                            f"property violated at pointer {pointer}, lane "
                            f"{first_failing_lane(viol)}",
                        )
                    )
            if len(findings) >= _MAX_COMPONENT_FINDINGS:
                return findings
    # VC grants: OR over q of AND2(select, crossbar row grant).
    kinds = nl.kinds
    P = len(p.xbar_row)
    for v in range(V):
        leaves, lerr = or_cone_leaves(nl, p.grants_v[v])
        if lerr:
            findings.append(
                _err("VER-STRUCT", scope, loc, f"vc grant {v} OR: {lerr}")
            )
            continue
        seen_q = set()
        good = len(leaves) == P
        for term in leaves:
            if kinds[term] != _AND2:
                good = False
                break
            sel, xb = nl.fanins[term]
            try:
                q = p.xbar_row.index(xb)
            except ValueError:
                good = False
                break
            if q in seen_q or sel != p.sel_nets[q][v]:
                good = False
                break
            seen_q.add(q)
        if not (good and len(seen_q) == P):
            findings.append(
                _err(
                    "VER-STRUCT",
                    scope,
                    loc,
                    f"vc grant {v} is not the select/crossbar combine over "
                    "every output port",
                )
            )
    findings.extend(
        _mask_ring_induction(
            nl, scope, loc, regs, p.grants_v, p.update_enable, and_any_grant=False
        )
    )
    return findings


# ----------------------------------------------------------------------
# Dispatcher
# ----------------------------------------------------------------------
def check_netlist(nl: Netlist, trace: BuildTrace, scope: str) -> List[Finding]:
    """Prove every traced component of ``nl`` against its behavioural
    semantics; returns findings (empty means everything proved)."""
    findings: List[Finding] = []
    if not (trace.arbiters or trace.trees or trace.wavefronts or trace.preselects):
        return [
            _err(
                "VER-TRACE",
                scope,
                "netlist",
                "no components were traced during this build; nothing to prove",
            )
        ]
    for idx, a in enumerate(trace.arbiters):
        loc = f"arbiter[{idx}]/{a.kind}{len(a.request_nets)}"
        if a.kind == "fixed":
            comp = _check_fixed(nl, a, scope, loc)
        elif a.kind == "rr":
            comp = _check_rr(nl, a, scope, loc)
        elif a.kind == "matrix":
            comp = _check_matrix(nl, a, scope, loc)
        else:
            comp = [_err("VER-TRACE", scope, loc, f"unknown arbiter kind {a.kind!r}")]
        findings.extend(comp[:_MAX_COMPONENT_FINDINGS])
    for idx, t in enumerate(trace.trees):
        findings.extend(
            _check_tree(nl, trace, t, scope, f"tree[{idx}]")[:_MAX_COMPONENT_FINDINGS]
        )
    for idx, w in enumerate(trace.wavefronts):
        findings.extend(
            _check_wavefront(nl, w, scope, f"wavefront[{idx}]/n{w.n}")[
                :_MAX_COMPONENT_FINDINGS
            ]
        )
    for p in trace.preselects:
        findings.extend(
            _check_preselect(nl, p, scope, f"preselect[p{p.port}]")[
                :_MAX_COMPONENT_FINDINGS
            ]
        )
    return findings


# ----------------------------------------------------------------------
# End-to-end allocator equivalence (reduced configurations)
# ----------------------------------------------------------------------
def _input_map(nl: Netlist) -> Dict[str, int]:
    return {name: net for net, name in nl.input_names.items()}


def _output_map(nl: Netlist) -> Dict[str, int]:
    return {name: net for net, name in zip(nl.outputs, nl.output_names)}


def _initial_reg_state(nl: Netlist, trace: BuildTrace) -> Dict[int, int]:
    """Register state matching the behavioural models' ``reset()``.

    Thermometer masks reset to all-ones (pointer 0) and the matrix
    triangle to all-ones ("lower index beats higher" -- the behavioural
    ``i < j`` initialisation), so every DFF resets to 1 except the
    wavefront diagonal pointer rings, which are one-hot at diagonal 0.
    """
    state = {q: 1 for q in nl.reg_d}
    for w in trace.wavefronts:
        for idx, reg in enumerate(w.ptr_regs):
            state[reg] = 1 if idx == 0 else 0
    return state


def _step_regs(
    nl: Netlist, input_bits: Dict[int, int], reg_state: Dict[int, int]
) -> Dict[int, int]:
    """Clock the netlist once (single-lane) under scalar stimulus."""
    targets = list(nl.reg_d.values())
    vals = packed_eval(nl, dict(input_bits), 1, reg_state, targets)
    return {q: vals[d] & 1 for q, d in nl.reg_d.items()}


def _product_bounded(
    slots: Sequence[Sequence[object]], max_active: Optional[int]
) -> List[Tuple[object, ...]]:
    """Cartesian product over slots, optionally bounded to at most
    ``max_active`` non-idle slots (option 0 of each slot is the idle
    one).  The bound keeps the flattened-butterfly stimulus sets in the
    thousands instead of the hundreds of thousands while still covering
    every pairwise and three-way interaction."""
    if max_active is None:
        return list(itertools.product(*slots))
    out: List[Tuple[object, ...]] = []

    def rec(idx: int, active: int, chosen: List[object]) -> None:
        if idx == len(slots):
            out.append(tuple(chosen))
            return
        for k, opt in enumerate(slots[idx]):
            if k > 0 and active == max_active:
                break
            chosen.append(opt)
            rec(idx + 1, active + (1 if k else 0), chosen)
            chosen.pop()

    rec(0, 0, [])
    return out


def _e2e_vc(
    P: int,
    partition: VCPartition,
    arch: str,
    arbiter: str,
    scope: str,
    max_active: Optional[int] = None,
) -> List[Finding]:
    """Single-cycle-from-reset equivalence of a full VC allocator.

    Every legal request vector (per input VC: idle, or any non-empty
    subset of its successor classes aimed at any output port) becomes
    one packed lane; the netlist is evaluated once over all lanes at
    the reset register state and compared against ``allocate()`` from
    reset per lane.  Single cycle only: the behavioural and gate-level
    models decompose multi-arbiter priority state differently (tree vs
    flat), so their states correspond exactly at reset but are not
    field-by-field identical afterwards -- the per-component induction
    proofs cover the sequential behaviour instead.
    """
    findings: List[Finding] = []
    with tracing() as trace:
        nl = build_vc_allocator_netlist(P, partition, arch, arbiter)
    imap = _input_map(nl)
    omap = _output_map(nl)
    V = partition.num_vcs
    slots: List[List[Tuple[Tuple[str, ...], Optional[VCRequest]]]] = []
    for p in range(P):
        for v in range(V):
            m_in, r_in, _ = partition.vc_fields(v)
            classes = partition.successor_classes(r_in)
            opts: List[Tuple[Tuple[str, ...], Optional[VCRequest]]] = [((), None)]
            for smask in range(1, 1 << len(classes)):
                S = [classes[b] for b in range(len(classes)) if (smask >> b) & 1]
                cands = tuple(
                    u
                    for r_out in sorted(S)
                    for u in partition.class_vcs(m_in, r_out)
                )
                for q in range(P):
                    names = tuple(f"req_p{p}v{v}_c{r}" for r in S) + (
                        f"dest_p{p}v{v}_{q}",
                    )
                    opts.append((names, VCRequest(q, cands)))
            slots.append(opts)
    combos = _product_bounded(slots, max_active)
    lanes = len(combos)
    words: Dict[int, int] = {}
    expected = {name: 0 for name in omap}
    beh = VCAllocator(P, partition, arch, arbiter)
    for lane, combo in enumerate(combos):
        bit = 1 << lane
        beh.reset()
        grants = beh.allocate([opt[1] for opt in combo])
        for names, _ in combo:
            for nm in names:
                net = imap[nm]
                words[net] = words.get(net, 0) | bit
        for i, g in enumerate(grants):
            if g is not None:
                expected[f"gnt_{i}_{g[1]}"] |= bit
    reg_state = _initial_reg_state(nl, trace)
    names = sorted(omap)
    got = packed_eval(nl, words, lanes, reg_state, [omap[n] for n in names])
    for nm in names:
        gw = got[omap[nm]]
        ew = expected[nm]
        if gw != ew:
            lane = first_failing_lane(gw ^ ew)
            stim = sorted(n for ns, _ in combos[lane] for n in ns)
            findings.append(
                _err(
                    "VER-EQUIV",
                    scope,
                    nm,
                    f"netlist={(gw >> lane) & 1} behavioural="
                    f"{(ew >> lane) & 1} under stimulus {stim}",
                )
            )
            if len(findings) >= 5:
                break
    return findings


def _e2e_sw(
    P: int, V: int, arch: str, arbiter: str, steps: int, scope: str
) -> List[Finding]:
    """Multi-cycle lockstep equivalence of a non-speculative switch
    allocator.

    Per cycle: a packed *probe* evaluates the netlist over every
    request vector at the current register state and compares against
    ``allocate(..., commit=False)`` per lane (state untouched on both
    sides -- the wavefront's rotate-on-probe is explicitly restored);
    then one shared committed vector steps both models.  Sound because
    here (unlike the VC allocator) the two state spaces correspond
    field by field -- the per-component proofs above certify exactly
    that correspondence.
    """
    findings: List[Finding] = []
    with tracing() as trace:
        nl = build_switch_allocator_netlist(P, V, arch, arbiter, "nonspec")
    imap = _input_map(nl)
    omap = _output_map(nl)
    combos = list(itertools.product([None] + list(range(P)), repeat=P * V))
    lanes = len(combos)
    words: Dict[int, int] = {}
    for lane, combo in enumerate(combos):
        bit = 1 << lane
        for idx, q in enumerate(combo):
            if q is not None:
                p, v = divmod(idx, V)
                net = imap[f"ns_req_p{p}v{v}_q{q}"]
                words[net] = words.get(net, 0) | bit
    beh = SwitchAllocator(P, V, arch, arbiter)
    reg_state = _initial_reg_state(nl, trace)
    names = sorted(omap)
    wf = beh._wavefront
    for step in range(steps):
        got = packed_eval(nl, words, lanes, reg_state, [omap[n] for n in names])
        expected = {n: 0 for n in names}
        d0 = wf.priority_diagonal if wf is not None else None
        for lane, combo in enumerate(combos):
            bit = 1 << lane
            requests = [
                [combo[p * V + v] for v in range(V)] for p in range(P)
            ]
            grants = beh.allocate(requests, commit=False)
            if wf is not None:
                wf.set_diagonal(d0)
            for p, g in enumerate(grants):
                if g is not None:
                    vv, q = g
                    expected[f"xbar_{p}_{q}"] |= bit
                    expected[f"vcgnt_{p}_{vv}"] |= bit
        for nm in names:
            gw = got[omap[nm]]
            ew = expected[nm]
            if gw != ew:
                lane = first_failing_lane(gw ^ ew)
                findings.append(
                    _err(
                        "VER-EQUIV",
                        scope,
                        f"{nm}@cycle{step}",
                        f"netlist={(gw >> lane) & 1} behavioural="
                        f"{(ew >> lane) & 1} under request vector "
                        f"{combos[lane]}",
                    )
                )
                if len(findings) >= 5:
                    return findings
        commit = [[(p + v + step) % P for v in range(V)] for p in range(P)]
        beh.allocate(commit, commit=True)
        cbits = {
            imap[f"ns_req_p{p}v{v}_q{commit[p][v]}"]: 1
            for p in range(P)
            for v in range(V)
        }
        reg_state = _step_regs(nl, cbits, reg_state)
    return findings


def _e2e_spec(
    P: int, V: int, arch: str, scheme: str, scope: str
) -> List[Finding]:
    """Single-cycle-from-reset equivalence of a speculative switch
    allocator: both requests sides enumerated jointly, the combined
    crossbar grants and the per-side VC grants compared bit for bit
    (the netlist's speculative grants are masked by the row/column
    busy filter exactly as the behavioural scheme masks them)."""
    findings: List[Finding] = []
    with tracing() as trace:
        nl = build_switch_allocator_netlist(P, V, arch, "rr", scheme)
    imap = _input_map(nl)
    omap = _output_map(nl)
    opts: List[Optional[Tuple[str, int]]] = [None]
    opts += [("ns", q) for q in range(P)]
    opts += [("sp", q) for q in range(P)]
    combos = list(itertools.product(opts, repeat=P * V))
    lanes = len(combos)
    words: Dict[int, int] = {}
    expected = {name: 0 for name in omap}
    beh = SpeculativeSwitchAllocator(P, V, arch, "rr", scheme)
    for lane, combo in enumerate(combos):
        bit = 1 << lane
        beh.reset()
        ns: List[List[Optional[int]]] = [[None] * V for _ in range(P)]
        sp: List[List[Optional[int]]] = [[None] * V for _ in range(P)]
        for idx, o in enumerate(combo):
            if o is None:
                continue
            tag, q = o
            p, v = divmod(idx, V)
            (ns if tag == "ns" else sp)[p][v] = q
            net = imap[f"{tag}_req_p{p}v{v}_q{q}"]
            words[net] = words.get(net, 0) | bit
        res = beh.allocate(ns, sp)
        for p in range(P):
            if res.nonspec[p] is not None:
                vv, q = res.nonspec[p]
                expected[f"xbar_{p}_{q}"] |= bit
                expected[f"vcgnt_ns_{p}_{vv}"] |= bit
            if res.spec[p] is not None:
                vv, q = res.spec[p]
                expected[f"xbar_{p}_{q}"] |= bit
                expected[f"vcgnt_sp_{p}_{vv}"] |= bit
    reg_state = _initial_reg_state(nl, trace)
    names = sorted(omap)
    got = packed_eval(nl, words, lanes, reg_state, [omap[n] for n in names])
    for nm in names:
        gw = got[omap[nm]]
        ew = expected[nm]
        if gw != ew:
            lane = first_failing_lane(gw ^ ew)
            findings.append(
                _err(
                    "VER-EQUIV",
                    scope,
                    nm,
                    f"netlist={(gw >> lane) & 1} behavioural="
                    f"{(ew >> lane) & 1} under stimulus {combos[lane]}",
                )
            )
            if len(findings) >= 5:
                break
    return findings


def e2e_check_matrix(
    progress=None, quick: bool = False
) -> List[Finding]:
    """Run the end-to-end equivalence configurations.

    Reduced configurations (P=2/3) keep the legal-stimulus spaces
    exhaustible while exercising every architecture/arbiter/speculation
    combination the paper evaluates; the full-size design points are
    covered by the per-component proofs, which are width-generic.
    """
    findings: List[Finding] = []
    mesh1 = VCPartition.mesh(1)
    vc_jobs: List[Tuple[int, VCPartition, str, str, str, Optional[int]]] = [
        (2, mesh1, "mesh-c1", arch, arb, None)
        for arch, arb in (
            ("sep_if", "m"),
            ("sep_if", "rr"),
            ("sep_of", "m"),
            ("sep_of", "rr"),
            ("wf", "rr"),
        )
    ]
    sw_jobs: List[Tuple[int, int, str, str, int]] = [
        (2, 2, arch, "rr", 3) for arch in ("sep_if", "sep_of", "wf")
    ]
    spec_jobs: List[Tuple[int, int, str, str]] = [(2, 2, "sep_if", "pessimistic")]
    if not quick:
        mesh2 = VCPartition.mesh(2)
        fb1 = VCPartition.fbfly(1)
        vc_jobs += [
            (2, mesh2, "mesh-c2", "sep_if", "rr", None),
            (2, mesh2, "mesh-c2", "sep_of", "m", None),
            (2, mesh2, "mesh-c2", "wf", "rr", None),
            (2, fb1, "fbfly-c1", "sep_if", "rr", 3),
            (2, fb1, "fbfly-c1", "wf", "rr", 3),
        ]
        sw_jobs += [(3, 2, arch, "rr", 2) for arch in ("sep_if", "sep_of", "wf")]
        sw_jobs += [(2, 2, arch, "m", 3) for arch in ("sep_if", "sep_of")]
        spec_jobs += [
            (2, 2, arch, scheme)
            for arch in ("sep_if", "sep_of", "wf")
            for scheme in ("pessimistic", "conventional")
            if (arch, scheme) != ("sep_if", "pessimistic")
        ]
    for P, part, plabel, arch, arb, max_active in vc_jobs:
        scope = f"e2e/vc/P{P}/{plabel}/{arch}/{arb}"
        if progress:
            progress(scope)
        findings.extend(_e2e_vc(P, part, arch, arb, scope, max_active))
    for P, V, arch, arb, steps in sw_jobs:
        scope = f"e2e/sw/P{P}V{V}/{arch}/{arb}"
        if progress:
            progress(scope)
        findings.extend(_e2e_sw(P, V, arch, arb, steps, scope))
    for P, V, arch, scheme in spec_jobs:
        scope = f"e2e/spec/P{P}V{V}/{arch}/{scheme}"
        if progress:
            progress(scope)
        findings.extend(_e2e_spec(P, V, arch, scheme, scope))
    return findings
