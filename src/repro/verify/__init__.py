"""Formal verification of the gate-level allocator netlists.

``repro verify`` proves -- not samples -- three kinds of facts about
every netlist the paper evaluates:

* **combinational equivalence** (:mod:`.equivalence`): each traced
  component (arbiter, wavefront block, VC preselect) computes exactly
  the behavioural :mod:`repro.core` function over *all* request inputs
  and *all* reachable priority states, in situ in the full netlist; and
  reduced-configuration allocators match ``allocate()`` end to end over
  every legal stimulus.
* **sequential induction** (also :mod:`.equivalence`): every priority-state
  update (round-robin mask rotation, matrix triangle update, wavefront
  pointer ring) matches the behavioural update from *any* state, so the
  per-state equivalence above extends to all cycles by induction.
* **temporal safety properties** (:mod:`.properties`): a declarative
  property DSL (grant⊆request, at-most-one grant, work conservation)
  evaluated on the same packed sweeps, plus a bounded-starvation check
  over the round-robin pointer state space.

The engine (:mod:`.engine`) is a bit-parallel evaluator: one Python
bigint carries up to 2^16 evaluation lanes, so an exhaustive 16-input
sweep costs a single pass over the cone.  The mutation harness
(:mod:`.mutate`) measures checker coverage by injecting single-gate
mutations and asserting they are killed.
"""

from .engine import ConeEvaluator, MAX_EXHAUSTIVE_BITS, check_or_cone, sweep
from .equivalence import check_netlist, e2e_check_matrix
from .mutate import MutationReport, run_mutation_campaign
from .properties import ARBITER_PROPERTIES, rr_starvation_bound
from .runner import VERIFY_RULES, verify_paper_netlists

__all__ = [
    "ConeEvaluator",
    "MAX_EXHAUSTIVE_BITS",
    "check_or_cone",
    "sweep",
    "check_netlist",
    "e2e_check_matrix",
    "MutationReport",
    "run_mutation_campaign",
    "ARBITER_PROPERTIES",
    "rr_starvation_bound",
    "VERIFY_RULES",
    "verify_paper_netlists",
]
