"""Declarative safety properties over packed evaluation lanes.

The paper's allocator analysis rests on a handful of invariants it
never states as proof obligations: a grant is only ever issued to a
requester, each arbiter issues at most one grant, an arbiter with any
request pending issues exactly one grant (work conservation), and the
round-robin pointer guarantees bounded waiting for a persistent
requester.  This module makes those invariants first-class objects: a
:class:`Property` names an invariant, cites the paper section it backs,
and builds a boolean :class:`Term` over named signal vectors that the
equivalence sweeps evaluate on every lane of every reachable state --
so a property report of "holds" means *holds for every input and every
reachable priority state*, not "held during simulation".

Terms evaluate over an environment mapping signal names (``req[i]``,
``gnt[i]``) to packed words; the result is a packed word whose zero
lanes are counterexamples.  Keeping the AST tiny (var/not/and/or) is
deliberate: a property you can read in one line is a property a
reviewer can check against the paper's prose.

:func:`rr_starvation_bound` is the one *temporal* argument: an explicit
dynamic-programming walk of the round-robin pointer state space proving
a persistent requester waits at most ``n - 1`` grants to other inputs.
Combined with the proved gate/behavioural equivalence it transfers to
the netlists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

__all__ = [
    "Term",
    "var",
    "not_",
    "and_",
    "or_",
    "implies",
    "Property",
    "ARBITER_PROPERTIES",
    "check_property",
    "wavefront_properties",
    "rr_starvation_bound",
]


@dataclass(frozen=True)
class Term:
    """Boolean expression tree over named packed signals.

    ``op`` is one of ``"var"`` (leaf, ``name`` set), ``"not"`` (one
    child), ``"and"`` / ``"or"`` (>= 1 children).
    """

    op: str
    name: str = ""
    children: Tuple["Term", ...] = ()

    def eval(self, env: Dict[str, int], mask: int) -> int:
        if self.op == "var":
            try:
                return env[self.name] & mask
            except KeyError:
                raise KeyError(
                    f"property references unknown signal {self.name!r}; "
                    f"environment has {sorted(env)}"
                ) from None
        if self.op == "not":
            return mask ^ self.children[0].eval(env, mask)
        if self.op == "and":
            v = mask
            for c in self.children:
                v &= c.eval(env, mask)
            return v
        if self.op == "or":
            v = 0
            for c in self.children:
                v |= c.eval(env, mask)
            return v
        raise ValueError(f"unknown term op {self.op!r}")

    def __str__(self) -> str:
        if self.op == "var":
            return self.name
        if self.op == "not":
            return f"!{self.children[0]}"
        joiner = " & " if self.op == "and" else " | "
        return "(" + joiner.join(str(c) for c in self.children) + ")"


def var(name: str) -> Term:
    return Term("var", name=name)


def not_(t: Term) -> Term:
    return Term("not", children=(t,))


def and_(*ts: Term) -> Term:
    if not ts:
        raise ValueError("and_ needs >= 1 term")
    return Term("and", children=ts)


def or_(*ts: Term) -> Term:
    if not ts:
        raise ValueError("or_ needs >= 1 term")
    return Term("or", children=ts)


def implies(a: Term, b: Term) -> Term:
    return or_(not_(a), b)


@dataclass(frozen=True)
class Property:
    """A named invariant instantiated per arbiter width.

    ``build(n)`` returns the term that must evaluate to all-ones over
    an environment with signals ``req[0..n-1]`` and ``gnt[0..n-1]``.
    """

    name: str
    description: str
    paper_ref: str
    build: Callable[[int], Term]


def _grant_implies_request(n: int) -> Term:
    return and_(
        *(implies(var(f"gnt[{i}]"), var(f"req[{i}]")) for i in range(n))
    )


def _at_most_one_grant(n: int) -> Term:
    clauses = [
        not_(and_(var(f"gnt[{i}]"), var(f"gnt[{j}]")))
        for i in range(n)
        for j in range(i + 1, n)
    ]
    if not clauses:  # n == 1: vacuously true
        return or_(var("gnt[0]"), not_(var("gnt[0]")))
    return and_(*clauses)


def _work_conserving(n: int) -> Term:
    return implies(
        or_(*(var(f"req[{i}]") for i in range(n))),
        or_(*(var(f"gnt[{i}]") for i in range(n))),
    )


ARBITER_PROPERTIES: Tuple[Property, ...] = (
    Property(
        name="grant-implies-request",
        description="a grant is only issued to an input that requested",
        paper_ref="Section 2.1 (arbiter definition)",
        build=_grant_implies_request,
    ),
    Property(
        name="at-most-one-grant",
        description="an arbiter never grants two inputs simultaneously",
        paper_ref="Section 2.1 (single-winner arbitration)",
        build=_at_most_one_grant,
    ),
    Property(
        name="work-conserving",
        description="any pending request yields exactly one grant",
        paper_ref="Section 2.1 (maximal arbitration)",
        build=_work_conserving,
    ),
)


def check_property(
    prop: Property,
    n: int,
    req_words: Sequence[int],
    gnt_words: Sequence[int],
    mask: int,
) -> int:
    """Evaluate ``prop`` over packed lanes; returns the *violation* word.

    A zero return means the property holds on every lane; a set bit
    marks a counterexample lane (decode with
    :func:`repro.verify.engine.decode_lane` against the sweep's
    variable order).
    """
    env: Dict[str, int] = {}
    for i in range(n):
        env[f"req[{i}]"] = req_words[i]
        env[f"gnt[{i}]"] = gnt_words[i]
    holds = prop.build(n).eval(env, mask)
    return mask ^ holds


def wavefront_properties(n: int) -> List[Tuple[str, Term]]:
    """Matching invariants of an ``n x n`` wavefront allocator copy.

    Terms read signals ``req[i,j]`` / ``gnt[i,j]``.  ``maximal-matching``
    is the paper's Section 2.2 claim that the wave sweep always produces
    a *maximal* matching: any requested cell whose row and column are
    both grant-free would have been granted, so every request implies a
    grant somewhere in its row or column.
    """

    def r(i: int, j: int) -> Term:
        return var(f"req[{i},{j}]")

    def g(i: int, j: int) -> Term:
        return var(f"gnt[{i},{j}]")

    cells = [(i, j) for i in range(n) for j in range(n)]
    props: List[Tuple[str, Term]] = [
        (
            "grant-implies-request",
            and_(*(implies(g(i, j), r(i, j)) for i, j in cells)),
        ),
        (
            "row-at-most-one",
            and_(
                *(
                    not_(and_(g(i, j), g(i, k)))
                    for i in range(n)
                    for j in range(n)
                    for k in range(j + 1, n)
                )
            ),
        ),
        (
            "col-at-most-one",
            and_(
                *(
                    not_(and_(g(i, j), g(k, j)))
                    for j in range(n)
                    for i in range(n)
                    for k in range(i + 1, n)
                )
            ),
        ),
        (
            "maximal-matching",
            and_(
                *(
                    implies(
                        r(i, j),
                        or_(
                            *(g(i, k) for k in range(n)),
                            *(g(k, j) for k in range(n)),
                        ),
                    )
                    for i, j in cells
                )
            ),
        ),
    ]
    return props


def rr_starvation_bound(n: int) -> Tuple[int, List[int]]:
    """Exact worst-case starvation bound for an ``n``-input round-robin.

    For a persistent requester ``i`` and pointer ``p``, adversarial
    other requesters can win only at indices in the cyclic interval
    ``[p, i)`` (the behavioural select scans from ``p`` and ``i`` is
    always requesting, so nothing at or after ``i`` in scan order can
    win first).  Each such win at ``j`` moves the pointer to
    ``j + 1 (mod n)``, strictly shrinking the cyclic distance
    ``(i - p) mod n`` -- so the walk terminates and memoisation over the
    ``n`` pointer states is sound:

        steps(p) = 0                               if [p, i) is empty
                   1 + max_{j in [p, i)} steps(j+1 mod n)  otherwise

    Returns ``(bound, per_pointer)``: the worst case over all pointer
    states and the per-pointer-state bounds for requester 0 (by the
    rotation symmetry of the arbiter, requester identity is
    irrelevant: relabel indices so the persistent requester is 0).
    The exact bound is ``n - 1`` -- each adversary index can win at
    most once before the pointer passes it.
    """
    if n < 1:
        raise ValueError("arbiter width must be >= 1")
    i = 0
    memo: Dict[int, int] = {}

    def steps(p: int) -> int:
        if p in memo:
            return memo[p]
        dist = (i - p) % n  # number of indices in cyclic [p, i)
        if dist == 0:
            memo[p] = 0
            return 0
        worst = 0
        for k in range(dist):
            j = (p + k) % n
            worst = max(worst, 1 + steps((j + 1) % n))
        memo[p] = worst
        return worst

    per_pointer = [steps(p) for p in range(n)]
    return max(per_pointer), per_pointer
