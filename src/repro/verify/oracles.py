"""Packed reference functions ("oracles") for the arbiter equivalence proofs.

Each oracle computes, over packed lanes, what the behavioural model in
:mod:`repro.core` computes per call.  The equivalence checker compares
netlist cones against these oracles because a packed comparison costs a
handful of bigint operations per state, whereas looping the behavioural
model over every lane costs one Python call per lane.

The oracles must themselves be trusted, so they are *cross-validated*
against the behavioural arbiters lane-by-lane -- exhaustively for every
width/state that admits it, by seeded random sampling for the matrix
arbiter at widths whose state space is astronomically large (the matrix
oracle is the behavioural ``select`` definition transliterated, and the
formula is width-uniform, so exhaustive validation at small widths
carries the structure).  :func:`validate_rr_oracle` and
:func:`validate_matrix_oracle` raise on any divergence; the runner
invokes them once per request width it encounters.

State-space enumeration helpers live here too: the round-robin mask is
a thermometer code, so its reachable states are exactly the ``n + 1``
suffix masks (:func:`rr_mask_states`), including the all-zeros mask the
hardware reaches after granting index ``n - 1`` (behaviourally the
pointer wraps to 0; with an all-zero mask the hardware falls through to
the unmasked fixed-priority stage, which is pointer-0 semantics -- the
equivalence sweep proves this correspondence rather than assuming it).
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.arbiters import MatrixArbiter, RoundRobinArbiter
from .engine import decode_lane

__all__ = [
    "fixed_priority_packed",
    "rr_mask_states",
    "rr_grants_packed",
    "matrix_grants_packed",
    "wavefront_grants_packed",
    "validate_rr_oracle",
    "validate_matrix_oracle",
    "validate_wavefront_oracle",
]


def fixed_priority_packed(requests: Sequence[int], mask: int) -> List[int]:
    """Lowest-index-wins grants, lane-parallel.

    ``grants[i] = requests[i] & ~(requests[0] | ... | requests[i-1])``.
    """
    grants: List[int] = []
    seen = 0
    for r in requests:
        grants.append(r & (mask ^ seen))
        seen |= r
    return grants


def rr_mask_states(n: int) -> List[Tuple[int, List[int]]]:
    """All reachable round-robin mask states as ``(pointer, mask_bits)``.

    The mask is a thermometer code "1 at and after the pointer": after
    granting index ``w`` the new mask is 1 strictly after ``w``, so the
    reachable set is exactly the suffix masks for ``k = 0..n`` (``k=0``
    is the all-ones reset state).  ``k = n`` (all zeros, reached after a
    grant to ``n - 1``) behaves as pointer ``0``: no request survives
    the mask, so the unmasked fixed-priority stage decides -- the same
    outcome as a pointer at index 0.  Hence ``pointer = k % n``.
    """
    return [(k % n, [1 if i >= k else 0 for i in range(n)]) for k in range(n + 1)]


def rr_grants_packed(
    requests: Sequence[int], mask_bits: Sequence[int], mask: int
) -> List[int]:
    """Round-robin grants for a fixed thermometer mask, lane-parallel.

    Masked requests win by fixed priority when any exists, else the
    unmasked requests decide -- the dual-prefix structure of both the
    behavioural pointer search and the hardware.
    """
    masked = [r if b else 0 for r, b in zip(requests, mask_bits)]
    any_masked = 0
    for m in masked:
        any_masked |= m
    g_masked = fixed_priority_packed(masked, mask)
    g_unmasked = fixed_priority_packed(requests, mask)
    return [
        (any_masked & gm) | ((mask ^ any_masked) & gu)
        for gm, gu in zip(g_masked, g_unmasked)
    ]


def matrix_grants_packed(
    requests: Sequence[int],
    beats: Dict[Tuple[int, int], int],
    mask: int,
) -> List[int]:
    """Matrix-arbiter grants, lane-parallel.

    ``beats[(j, i)]`` is the packed word for "j currently beats i", for
    every ordered pair ``j != i`` (callers derive the lower triangle by
    complementing the stored upper triangle, mirroring the hardware's
    INV).  ``grants[i] = req[i] & ~OR_{j != i}(req[j] & beats[(j, i)])``
    -- the behavioural ``select`` definition verbatim.
    """
    n = len(requests)
    grants: List[int] = []
    for i in range(n):
        deny = 0
        for j in range(n):
            if j != i:
                deny |= requests[j] & beats[(j, i)]
        grants.append(requests[i] & (mask ^ deny))
    return grants


def wavefront_grants_packed(
    req: Sequence[Sequence[int]],
    diagonal: int,
    mask: int,
) -> List[List[int]]:
    """Wavefront-allocator grants for a fixed priority diagonal.

    ``req[i][j]`` are packed request words for an ``n x n`` matrix.
    Implements the greedy wave recurrence the hardware's tile array
    computes: visit cells in wave order (diagonal distance from the
    priority diagonal, row-major within a wave) and grant iff the row
    and column are still free.  Cells on one wave never share a row or
    column, so intra-wave order is irrelevant -- this is also exactly
    what :meth:`repro.core.wavefront.WavefrontAllocator.allocate` does
    via its stable sort on wave index.
    """
    n = len(req)
    row_free = [mask] * n
    col_free = [mask] * n
    grants = [[0] * n for _ in range(n)]
    cells = sorted(
        ((i, j) for i in range(n) for j in range(n)),
        key=lambda ij: ((ij[0] + ij[1] - diagonal) % n, ij[0], ij[1]),
    )
    for i, j in cells:
        g = req[i][j] & row_free[i] & col_free[j]
        grants[i][j] = g
        row_free[i] &= mask ^ g
        col_free[j] &= mask ^ g
    return grants


def _lane_words(num_vars: int) -> List[int]:
    """Variable words over the full lane hypercube (bit L = (L >> i) & 1)."""
    total = 1 << num_vars
    words = []
    for i in range(num_vars):
        half = 1 << i
        m = ((1 << half) - 1) << half
        width = half * 2
        while width < total:
            m |= m << width
            width *= 2
        words.append(m & ((1 << total) - 1))
    return words


def validate_rr_oracle(n: int) -> None:
    """Prove :func:`rr_grants_packed` equals :class:`RoundRobinArbiter`.

    Exhaustive over all ``2^n`` request vectors and all ``n + 1``
    reachable mask states; raises ``AssertionError`` on divergence.
    """
    arb = RoundRobinArbiter(n)
    words = _lane_words(n)
    total = 1 << n
    mask = (1 << total) - 1
    for pointer, bits in rr_mask_states(n):
        packed = rr_grants_packed(words, bits, mask)
        arb.set_pointer(pointer)
        for lane in range(total):
            reqs = decode_lane(lane, n)
            winner = arb.select([bool(b) for b in reqs])
            for i in range(n):
                got = (packed[i] >> lane) & 1
                want = 1 if winner == i else 0
                assert got == want, (
                    f"rr oracle n={n} pointer={pointer} lane={lane:0{n}b}: "
                    f"grant[{i}]={got}, behavioural={want}"
                )


def validate_matrix_oracle(n: int, samples: int = 256, seed: int = 0) -> None:
    """Prove :func:`matrix_grants_packed` equals :class:`MatrixArbiter`.

    Exhaustive over all request vectors x all antisymmetric priority
    matrices when ``n <= 5`` (``2^n * 2^(n(n-1)/2)`` states); seeded
    random matrices with exhaustive request sweeps above that.
    """
    arb = MatrixArbiter(n)
    words = _lane_words(n)
    total = 1 << n
    mask = (1 << total) - 1
    npairs = n * (n - 1) // 2
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]

    if n <= 5:
        tri_states = range(1 << npairs)
    else:
        rng = random.Random(seed)
        tri_states = [rng.getrandbits(npairs) for _ in range(samples)]

    for tri in tri_states:
        beats: Dict[Tuple[int, int], int] = {}
        matrix = [[False] * n for _ in range(n)]
        for idx, (i, j) in enumerate(pairs):
            bit = (tri >> idx) & 1
            beats[(i, j)] = mask if bit else 0
            beats[(j, i)] = 0 if bit else mask
            matrix[i][j] = bool(bit)
            matrix[j][i] = not bit
        packed = matrix_grants_packed(words, beats, mask)
        arb.set_beats(matrix)
        for lane in range(total):
            reqs = decode_lane(lane, n)
            winner = arb.select([bool(b) for b in reqs])
            for i in range(n):
                got = (packed[i] >> lane) & 1
                want = 1 if winner == i else 0
                assert got == want, (
                    f"matrix oracle n={n} tri={tri:0{npairs}b} "
                    f"lane={lane:0{n}b}: grant[{i}]={got}, behavioural={want}"
                )


def validate_wavefront_oracle(n: int) -> None:
    """Prove :func:`wavefront_grants_packed` equals ``WavefrontAllocator``.

    Exhaustive over all ``2^(n*n)`` request matrices and all ``n``
    priority diagonals (callers keep ``n`` small; ``n = 3`` is 512
    matrices, ``n = 4`` is 65536).
    """
    from ..core.wavefront import WavefrontAllocator

    nn = n * n
    words = _lane_words(nn)
    total = 1 << nn
    mask = (1 << total) - 1
    req = [[words[i * n + j] for j in range(n)] for i in range(n)]
    alloc = WavefrontAllocator(n, n)
    for d in range(n):
        packed = wavefront_grants_packed(req, d, mask)
        for lane in range(total):
            bits = decode_lane(lane, nn)
            m = np.array(bits, dtype=bool).reshape(n, n)
            alloc.set_diagonal(d)
            grants = alloc.allocate(m)
            for i in range(n):
                for j in range(n):
                    got = (packed[i][j] >> lane) & 1
                    want = 1 if grants[i, j] else 0
                    assert got == want, (
                        f"wavefront oracle n={n} diag={d} lane={lane}: "
                        f"grant[{i}][{j}]={got}, behavioural={want}"
                    )
