"""Bit-parallel symbolic evaluation over :class:`~repro.hw.netlist.Netlist`.

The engine evaluates a logic cone for *every* assignment of its free
variables at once by packing evaluation lanes into Python bigints: lane
``L`` of a value word holds the net's value under the assignment whose
variable ``i`` equals bit ``i`` of the global lane index.  A sweep over
``k`` variables therefore costs one pass over the cone per 2^16-lane
chunk (``ceil(2^k / 2^16)`` passes), which makes exhaustive proofs over
cones of up to :data:`MAX_EXHAUSTIVE_BITS` inputs routine.

Cell semantics mirror :class:`repro.hw.simulate.NetlistSimulator`
bit-for-bit (the simulator is the reference the behavioural
cross-validation tests already trust); any divergence between the two
evaluators would itself show up as an equivalence failure.

Beyond packed sweeps the module provides two *structural* checkers used
where packed case-splitting would be quadratic-or-worse in the netlist
width: :func:`check_or_cone` proves a net is exactly the OR of an
expected multiset of leaf nets, and :func:`walk_buf_chain` resolves a
net through BUF fanout trees back to its driving source.  Structural
checks are sound for our builders because :mod:`repro.hw.logic` only
ever composes OR trees from {OR2, OR3, OR4} and fanout trees from BUFs.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..hw.cells import CELL_INDEX
from ..hw.netlist import KIND_CONST0, KIND_CONST1, KIND_INPUT, Netlist

__all__ = [
    "CHUNK_LOG2",
    "MAX_EXHAUSTIVE_BITS",
    "ConeEvaluator",
    "sweep",
    "decode_lane",
    "first_failing_lane",
    "check_or_cone",
    "or_cone_leaves",
    "walk_buf_chain",
    "packed_eval",
]

_DFF = CELL_INDEX["DFF"]
_INV = CELL_INDEX["INV"]
_BUF = CELL_INDEX["BUF"]
_NAND2 = CELL_INDEX["NAND2"]
_NOR2 = CELL_INDEX["NOR2"]
_AND2 = CELL_INDEX["AND2"]
_AND3 = CELL_INDEX["AND3"]
_AND4 = CELL_INDEX["AND4"]
_OR2 = CELL_INDEX["OR2"]
_OR3 = CELL_INDEX["OR3"]
_OR4 = CELL_INDEX["OR4"]
_XOR2 = CELL_INDEX["XOR2"]
_MUX2 = CELL_INDEX["MUX2"]

_OR_KINDS = frozenset((_OR2, _OR3, _OR4))

# Lanes per chunk: variables 0..CHUNK_LOG2-1 vary *within* a chunk,
# higher variables select the chunk.  2^16-bit bigints keep the word
# operations comfortably inside CPython's fast paths.
CHUNK_LOG2 = 16

# Refuse exhaustive sweeps beyond this many free variables (2^22 lanes
# = 64 chunks of 64 KiB words; ~a second per cone).  Callers partition
# or case-split above this -- silently attempting 2^30 lanes would look
# like a hang.
MAX_EXHAUSTIVE_BITS = 22

# Pattern masks for the in-chunk variables, built once per process.
# Variable i's mask has bit L set iff bit i of L is set, i.e. blocks of
# 2^i ones alternating with 2^i zeros.
_LOW_VAR_MASKS: List[int] = []


def _low_var_mask(i: int) -> int:
    while len(_LOW_VAR_MASKS) <= i:
        j = len(_LOW_VAR_MASKS)
        half = 1 << j
        m = ((1 << half) - 1) << half
        width = half * 2
        chunk_bits = 1 << CHUNK_LOG2
        while width < chunk_bits:
            m |= m << width
            width *= 2
        _LOW_VAR_MASKS.append(m)
    return _LOW_VAR_MASKS[i]


def decode_lane(lane: int, num_vars: int) -> List[int]:
    """Variable assignment (list of 0/1, index = variable) for a lane."""
    return [(lane >> i) & 1 for i in range(num_vars)]


def first_failing_lane(diff: int) -> int:
    """Index of the lowest set bit of a nonzero lane-difference word."""
    return (diff & -diff).bit_length() - 1


class ConeEvaluator:
    """Packed evaluator for the cone of ``targets`` cut at ``cut_nets``.

    The free variables are exactly the cone's boundary leaves (cut nets,
    primary inputs, and register Q pins inside the cone), in ascending
    net-id order -- :meth:`var_order` exposes the mapping.  Constant
    nets evaluate to their constant in every lane.

    ``evaluate_all`` returns, for each target, one integer whose lane
    ``L`` is the target's value under assignment ``L`` (variable ``i``
    of the assignment = bit ``i`` of the global lane index).
    """

    def __init__(
        self,
        nl: Netlist,
        targets: Sequence[int],
        cut: Iterable[int] = (),
    ) -> None:
        self.nl = nl
        self.targets = list(targets)
        cone, leaves = nl.support(self.targets, cut)
        self.cone = cone
        self.leaves = leaves
        self.num_vars = len(leaves)
        self._var_index = {net: i for i, net in enumerate(leaves)}
        # Pin leaf nets to fixed constants (packed all-0/all-1) instead
        # of sweeping them; pinned leaves are excluded from the lane
        # index entirely.
        self._pinned: Dict[int, int] = {}

    def var_order(self) -> List[int]:
        """Leaf net ids in variable order (bit i of lane = net [i])."""
        return list(self.leaves)

    def pin(self, pins: Dict[int, int]) -> "ConeEvaluator":
        """Fix some leaves to constants; remaining leaves are resorted
        into a fresh variable order.  Returns ``self`` for chaining."""
        for net, val in pins.items():
            if net not in self._var_index and net not in self._pinned:
                raise ValueError(f"net {net} is not a leaf of this cone")
            self._pinned[net] = 1 if val else 0
        free = [n for n in self.leaves if n not in self._pinned]
        self.num_vars = len(free)
        self._var_index = {net: i for i, net in enumerate(free)}
        return self

    def free_vars(self) -> List[int]:
        return [n for n in self.leaves if n not in self._pinned]

    @property
    def num_lanes(self) -> int:
        return 1 << self.num_vars

    def leaf_word(self, net: int) -> int:
        """Packed value of a boundary leaf over all current lanes.

        For a free leaf this is the pattern word of its variable index
        (bit ``L`` set iff bit ``var_index`` of ``L`` is set -- identical
        to what :meth:`evaluate_all` assigns chunk by chunk); for a
        pinned leaf it is the all-0/all-1 constant.  Callers use these
        words to feed the boundary assignment into a packed oracle.
        """
        total = 1 << self.num_vars
        full = (1 << total) - 1
        pinned = self._pinned.get(net)
        if pinned is not None:
            return full if pinned else 0
        i = self._var_index[net]
        half = 1 << i
        m = ((1 << half) - 1) << half
        width = half * 2
        while width < total:
            m |= m << width
            width *= 2
        return m & full

    def evaluate_all(self) -> Dict[int, int]:
        """Packed values of every target over all 2^num_vars lanes.

        Raises ``ValueError`` when more than :data:`MAX_EXHAUSTIVE_BITS`
        variables remain free (the check sits here rather than in the
        constructor so callers may :meth:`pin` a wide cone down to an
        exhaustible residue first).
        """
        if self.num_vars > MAX_EXHAUSTIVE_BITS:
            raise ValueError(
                f"cone has {self.num_vars} free variables "
                f"(> MAX_EXHAUSTIVE_BITS={MAX_EXHAUSTIVE_BITS}); "
                "partition or case-split instead"
            )
        total = 1 << self.num_vars
        chunk_lanes = 1 << CHUNK_LOG2
        results = {t: 0 for t in self.targets}
        num_chunks = max(1, (total + chunk_lanes - 1) >> CHUNK_LOG2)
        for c in range(num_chunks):
            lanes = min(chunk_lanes, total - (c << CHUNK_LOG2))
            mask = (1 << lanes) - 1
            vals = self._eval_chunk(c, lanes, mask)
            for t in self.targets:
                results[t] |= vals[t] << (c << CHUNK_LOG2)
        return results

    def _leaf_value(self, net: int, chunk: int, lanes: int, mask: int) -> int:
        pinned = self._pinned.get(net)
        if pinned is not None:
            return mask if pinned else 0
        i = self._var_index[net]
        if i < CHUNK_LOG2:
            return _low_var_mask(i) & mask
        return mask if (chunk >> (i - CHUNK_LOG2)) & 1 else 0

    def _eval_chunk(self, chunk: int, lanes: int, mask: int) -> Dict[int, int]:
        nl = self.nl
        kinds = nl.kinds
        fanins = nl.fanins
        vals: Dict[int, int] = {}
        for net in self.leaves:
            vals[net] = self._leaf_value(net, chunk, lanes, mask)
        for nid in self.cone:
            k = kinds[nid]
            f = fanins[nid]
            fv = [
                (0 if kinds[x] == KIND_CONST0
                 else mask if kinds[x] == KIND_CONST1
                 else vals[x])
                for x in f
            ]
            if k == _INV:
                v = mask ^ fv[0]
            elif k == _BUF:
                v = fv[0]
            elif k == _AND2:
                v = fv[0] & fv[1]
            elif k == _AND3:
                v = fv[0] & fv[1] & fv[2]
            elif k == _AND4:
                v = fv[0] & fv[1] & fv[2] & fv[3]
            elif k == _OR2:
                v = fv[0] | fv[1]
            elif k == _OR3:
                v = fv[0] | fv[1] | fv[2]
            elif k == _OR4:
                v = fv[0] | fv[1] | fv[2] | fv[3]
            elif k == _NAND2:
                v = mask ^ (fv[0] & fv[1])
            elif k == _NOR2:
                v = mask ^ (fv[0] | fv[1])
            elif k == _XOR2:
                v = fv[0] ^ fv[1]
            elif k == _MUX2:
                v = (fv[2] & fv[1]) | ((mask ^ fv[2]) & fv[0])
            else:  # pragma: no cover - support() never cones through these
                raise NotImplementedError(f"cell kind {k} in cone")
            vals[nid] = v
        for t in self.targets:
            kt = kinds[t]
            if kt == KIND_CONST0:
                vals[t] = 0
            elif kt == KIND_CONST1:
                vals[t] = mask
            elif t not in vals:  # a leaf that is also a target
                vals[t] = self._leaf_value(t, chunk, lanes, mask)
        return vals


def sweep(
    nl: Netlist,
    targets: Sequence[int],
    cut: Iterable[int] = (),
    pins: Optional[Dict[int, int]] = None,
) -> Tuple[Dict[int, int], List[int], int]:
    """Convenience wrapper: exhaustive packed sweep of a cone.

    Returns ``(values, var_order, num_vars)`` where ``values[net]`` is
    the packed truth table of ``net`` over the free variables listed in
    ``var_order`` (bit ``i`` of a lane index = value of ``var_order[i]``).
    """
    ev = ConeEvaluator(nl, targets, cut)
    if pins:
        ev.pin(pins)
    return ev.evaluate_all(), ev.free_vars(), ev.num_vars


def packed_eval(
    nl: Netlist,
    input_vectors: Dict[int, int],
    num_lanes: int,
    reg_state: Dict[int, int],
    targets: Sequence[int],
) -> Dict[int, int]:
    """Evaluate a whole netlist over *arbitrary* per-lane stimulus.

    ``input_vectors`` maps each primary-input net to a packed word whose
    lane ``L`` is that input's value in test vector ``L``; register Q
    nets take the scalar value from ``reg_state`` in every lane.  This
    is the end-to-end path: lanes are enumerated *legal* stimulus
    vectors rather than a free-variable hypercube, so allocator-level
    equivalence needs one pass per committed cycle regardless of how
    many vectors are checked.

    Returns packed values for ``targets`` (any net ids); all nets are
    evaluated, so targets may include internal nets.
    """
    mask = (1 << num_lanes) - 1
    kinds = nl.kinds
    fanins = nl.fanins
    vals: List[int] = [0] * nl.num_nets
    # Constants first: a mutated netlist may tie an early gate's fanin
    # to a const net created later, so consts must not depend on the
    # ascending evaluation order.
    for nid in range(nl.num_nets):
        if kinds[nid] == KIND_CONST1:
            vals[nid] = mask
    for nid in range(nl.num_nets):
        k = kinds[nid]
        if k == KIND_INPUT:
            vals[nid] = input_vectors.get(nid, 0) & mask
        elif k == KIND_CONST0:
            vals[nid] = 0
        elif k == KIND_CONST1:
            vals[nid] = mask
        elif k == _DFF:
            vals[nid] = mask if reg_state.get(nid, 0) else 0
        else:
            f = fanins[nid]
            if k == _INV:
                vals[nid] = mask ^ vals[f[0]]
            elif k == _BUF:
                vals[nid] = vals[f[0]]
            elif k == _AND2:
                vals[nid] = vals[f[0]] & vals[f[1]]
            elif k == _AND3:
                vals[nid] = vals[f[0]] & vals[f[1]] & vals[f[2]]
            elif k == _AND4:
                vals[nid] = vals[f[0]] & vals[f[1]] & vals[f[2]] & vals[f[3]]
            elif k == _OR2:
                vals[nid] = vals[f[0]] | vals[f[1]]
            elif k == _OR3:
                vals[nid] = vals[f[0]] | vals[f[1]] | vals[f[2]]
            elif k == _OR4:
                vals[nid] = vals[f[0]] | vals[f[1]] | vals[f[2]] | vals[f[3]]
            elif k == _NAND2:
                vals[nid] = mask ^ (vals[f[0]] & vals[f[1]])
            elif k == _NOR2:
                vals[nid] = mask ^ (vals[f[0]] | vals[f[1]])
            elif k == _XOR2:
                vals[nid] = vals[f[0]] ^ vals[f[1]]
            elif k == _MUX2:
                vals[nid] = (vals[f[2]] & vals[f[1]]) | (
                    (mask ^ vals[f[2]]) & vals[f[0]]
                )
            else:  # pragma: no cover
                raise NotImplementedError(f"cell kind {k}")
    return {t: vals[t] for t in targets}


def walk_buf_chain(nl: Netlist, net: int) -> int:
    """Resolve ``net`` through BUF cells back to its driving source.

    :func:`repro.hw.logic.fanout_tree` replicates high-fanout nets
    through trees of BUFs; structural checks need the original driver.
    BUF is functionally the identity, so this preserves semantics.
    """
    kinds = nl.kinds
    while kinds[net] == _BUF:
        net = nl.fanins[net][0]
    return net


def or_cone_leaves(
    nl: Netlist,
    root: int,
) -> Tuple[List[int], Optional[str]]:
    """Collect the leaves of the OR/BUF cone rooted at ``root``.

    Like :func:`check_or_cone` but with no expected multiset: walks
    down through {OR2, OR3, OR4, BUF} and returns every non-OR/non-BUF
    net reached (with multiplicity, in DFS order).  CONST0 fanins are
    dropped (OR identity); a CONST1 is a structural failure because an
    OR cone containing it is constant-true and the builders never emit
    that.  Returns ``(leaves, None)`` on success or ``([], message)``.
    """
    leaves: List[int] = []
    kinds = nl.kinds
    stack = [root]
    while stack:
        net = stack.pop()
        k = kinds[net]
        if k == KIND_CONST0:
            continue
        if k == KIND_CONST1:
            return [], f"net {net}: CONST1 inside OR cone rooted at {root}"
        if k == _BUF:
            stack.append(nl.fanins[net][0])
            continue
        if k in _OR_KINDS:
            stack.extend(nl.fanins[net])
            continue
        leaves.append(net)
    return leaves, None


def check_or_cone(
    nl: Netlist,
    root: int,
    expected_leaves: Sequence[int],
) -> Optional[str]:
    """Prove ``root`` == OR of exactly the multiset ``expected_leaves``.

    Walks the fanin cone of ``root`` through {OR2, OR3, OR4, BUF}
    cells, stopping at expected leaves; succeeds iff the stopped-at
    leaves are exactly ``expected_leaves`` as a multiset (OR is
    idempotent, so duplicate leaves are semantically harmless, but the
    builders produce each expected term exactly once and we hold them
    to it).  CONST0 fanins are ignored (OR identity); CONST1 or any
    non-OR gate below the root is a structural failure.

    Leaves are matched *before* recursion: an expected leaf may itself
    be an OR gate (e.g. a per-port any-request net that feeds a higher
    OR tree) and must be treated as opaque at this level.

    Returns ``None`` on success, else a human-readable failure message.
    The check is exact for netlists built by :mod:`repro.hw.logic`'s
    ``or_reduce``/``reduce_tree``; a mutated or hand-edited netlist
    fails loudly rather than being mis-certified.
    """
    exp = Counter(expected_leaves)
    found: Counter = Counter()
    kinds = nl.kinds

    stack = [root]
    while stack:
        net = stack.pop()
        if net in exp and found[net] < exp[net]:
            found[net] += 1
            continue
        k = kinds[net]
        if k == KIND_CONST0:
            continue
        if k == KIND_CONST1:
            return f"net {net}: CONST1 inside OR cone rooted at {root}"
        if k == _BUF:
            stack.append(nl.fanins[net][0])
            continue
        if k in _OR_KINDS:
            stack.extend(nl.fanins[net])
            continue
        return (
            f"net {net} (kind {k}) reached inside OR cone rooted at "
            f"{root}; expected only OR/BUF gates above leaves "
            f"{sorted(set(expected_leaves))}"
        )
    missing = exp - found
    if missing:
        return (
            f"OR cone rooted at {root} is missing expected leaves "
            f"{sorted(missing.elements())}"
        )
    return None
