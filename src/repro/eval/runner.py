"""Parallel sweep-execution engine with a persistent result cache.

Every latency-vs-load curve in the paper's evaluation (Figures 13/14
and all network-level ablations) is an embarrassingly parallel bag of
independent :class:`~repro.netsim.simulator.SimulationConfig` points:
Becker & Dally sweep six design points across many injection rates
(Section 5), and each point is a self-contained cycle-accurate run.
This module supplies the machinery the per-figure drivers share:

* :func:`run_sweep` fans points out across worker processes
  (``jobs > 1``) or runs them inline (``jobs <= 1``).  Results come
  back in input order, and because every simulation derives its RNG
  streams purely from ``(config.seed, terminal_id)``, parallel results
  are bit-identical to serial ones.

* :class:`ResultCache` memoizes completed
  :class:`~repro.netsim.simulator.SimulationResult` objects on disk,
  keyed by a stable hash of the *full* config plus a code-version salt
  (``SIMULATOR_REV``), with atomic writes and per-entry corruption
  recovery.  Re-running a figure benchmark pays only for points whose
  configuration (or the simulator itself) actually changed.

* :class:`SweepReporter` is a pluggable progress sink;
  :class:`ConsoleReporter` prints points done, cache hits, sims/sec
  and an ETA.

Execution is *hardened*: the parallel path runs one OS process per
point, so a worker that raises, hangs past ``timeout`` or is killed
outright fails only its own point -- recorded as a structured
:class:`PointFailure` (with bounded retry + exponential backoff) while
the rest of the sweep completes.  Pair with
:class:`~repro.eval.checkpoint.SweepCheckpoint` for crash-safe
``--resume`` across whole-process kills.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import multiprocessing as mp
import os
import sys
import time
from dataclasses import asdict, dataclass, field
from multiprocessing import connection as mp_connection
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, TextIO

from ..netsim.simulator import (
    SIMULATOR_REV,
    SimulationConfig,
    SimulationResult,
    run_simulation,
    run_simulation_worker,
)
from ..obs.metrics import emit_warning

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "config_key",
    "default_cache_path",
    "ResultCache",
    "SweepReporter",
    "NullReporter",
    "ConsoleReporter",
    "MultiReporter",
    "SweepStats",
    "PointFailure",
    "SweepPointError",
    "PointScheduler",
    "InlineScheduler",
    "ProcessPoolScheduler",
    "run_point",
    "run_sweep",
]

# Schema of the cache *file* (layout/keying).  Orthogonal to
# SIMULATOR_REV, which tracks the semantics of the cached *values*.
CACHE_SCHEMA_VERSION = 1


def config_key(cfg: SimulationConfig, salt: Optional[str] = None) -> str:
    """Stable cache key for one simulation point.

    Hashes the canonical JSON form of every config field plus a salt
    that defaults to the simulator code revision, so any config change
    *or* simulator-semantics bump yields a fresh key.
    """
    if salt is None:
        salt = f"sim-rev-{SIMULATOR_REV}"
    canonical = json.dumps(cfg.to_dict(), sort_keys=True)
    digest = hashlib.sha256(f"{salt}|{canonical}".encode()).hexdigest()
    return digest[:32]


def default_cache_path() -> Path:
    """``REPRO_SWEEP_CACHE`` override or a per-user cache file."""
    return Path(
        os.environ.get(
            "REPRO_SWEEP_CACHE",
            str(Path.home() / ".cache" / "repro-noc-sweeps.json"),
        )
    )


def _entries_checksum(entries: Dict[str, dict]) -> str:
    """Content checksum of the entry table (detects bit-rot/truncation)."""
    canonical = json.dumps(entries, sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()[:32]


class ResultCache:
    """Versioned on-disk memo of completed simulation results.

    File layout::

        {"schema": 1, "salt": "sim-rev-1", "checksum": "...",
         "entries": {key: payload}}

    A schema or salt mismatch discards the stored entries (stale
    numbers must never be served).  Real *corruption* is never silently
    swallowed: an unparsable file is quarantined to ``<path>.corrupt``
    with a structured warning, a checksum mismatch triggers per-entry
    recovery (individually valid entries survive, bad ones are dropped
    and counted), and an individually corrupt entry is also dropped at
    lookup time as a last line of defense.  Files written before the
    checksum existed load normally.  Writes go through a temp file +
    ``os.replace`` so a crash mid-write can never truncate an existing
    cache.

    Persistence is *batched*: :meth:`put` only marks the store dirty,
    and the full-file rewrite happens once ``flush_every`` inserts or
    ``flush_interval`` seconds have accumulated (whichever comes
    first), or on an explicit :meth:`flush` -- the sweep engine flushes
    at sweep end.  Rewriting the whole document per insert was O(n^2)
    I/O across a sweep; entries are recomputable simulation results, so
    losing the last unflushed batch to a crash is degraded service, not
    data loss (crash-safe durability is the checkpoint journal's job,
    see :mod:`repro.eval.checkpoint`).
    """

    def __init__(
        self,
        path: Optional[os.PathLike] = None,
        flush_every: int = 32,
        flush_interval: float = 5.0,
    ) -> None:
        self.path = Path(path) if path is not None else default_cache_path()
        self.salt = f"sim-rev-{SIMULATOR_REV}"
        self.flush_every = max(int(flush_every), 1)
        self.flush_interval = flush_interval
        self.hits = 0
        self.misses = 0
        self.flushes = 0  # full-file rewrites actually performed
        self._dirty = 0  # inserts since the last successful flush
        self._last_flush = time.monotonic()
        self._entries: Dict[str, dict] = {}
        self._load()

    def _quarantine(self, reason: str) -> None:
        """Preserve a corrupt cache file for inspection instead of
        letting the next flush overwrite the evidence."""
        target = Path(f"{self.path}.corrupt")
        try:
            os.replace(self.path, target)
        except OSError as exc:
            emit_warning(
                "cache_quarantine_failed",
                f"sweep cache {self.path} is corrupt ({reason}) and could "
                f"not be moved aside: {exc}",
                path=str(self.path),
                reason=reason,
            )
            return
        emit_warning(
            "cache_corrupt",
            f"sweep cache {self.path} is corrupt ({reason}); moved to "
            f"{target} and starting empty",
            path=str(self.path),
            quarantined_to=str(target),
            reason=reason,
        )

    def _load(self) -> None:
        try:
            text = self.path.read_text()
        except FileNotFoundError:
            return  # first run: nothing cached yet
        except OSError as exc:
            emit_warning(
                "cache_unreadable",
                f"cannot read sweep cache {self.path}: {exc}; starting empty",
                path=str(self.path),
            )
            return
        try:
            raw = json.loads(text)
        except (json.JSONDecodeError, UnicodeDecodeError):
            self._quarantine("not valid JSON")
            return
        if not isinstance(raw, dict):
            self._quarantine("top level is not a JSON object")
            return
        if raw.get("schema") != CACHE_SCHEMA_VERSION or raw.get("salt") != self.salt:
            return  # versioned invalidation: drop stale entries wholesale
        entries = raw.get("entries")
        if not isinstance(entries, dict):
            self._quarantine("entry table missing or malformed")
            return
        checksum = raw.get("checksum")
        if checksum is not None and checksum != _entries_checksum(entries):
            # The file parsed but its content does not match what was
            # written (hand edit, concurrent writer, bit-rot).  Recover
            # whatever still deserializes instead of dropping the lot.
            good: Dict[str, dict] = {}
            dropped = 0
            for k, v in entries.items():
                if isinstance(v, dict):
                    try:
                        SimulationResult.from_payload(v)
                    except (TypeError, KeyError, ValueError, AttributeError):
                        dropped += 1
                        continue
                    good[k] = v
                else:
                    dropped += 1
            emit_warning(
                "cache_checksum_mismatch",
                f"sweep cache {self.path} failed its content checksum; "
                f"recovered {len(good)} entrie(s), dropped {dropped}",
                path=str(self.path),
                recovered=len(good),
                dropped=dropped,
            )
            self._entries = good
            return
        self._entries = {
            k: v for k, v in entries.items() if isinstance(v, dict)
        }

    def __len__(self) -> int:
        return len(self._entries)

    def key(self, cfg: SimulationConfig) -> str:
        return config_key(cfg, self.salt)

    def get(self, cfg: SimulationConfig) -> Optional[SimulationResult]:
        """Cached result for ``cfg``, or ``None`` (counted as a miss)."""
        result = self.get_by_key(self.key(cfg))
        if result is not None:
            self.hits += 1
            return result
        self.misses += 1
        return None

    def get_by_key(self, key: str) -> Optional[SimulationResult]:
        """Validated result for a precomputed key; does not touch the
        hit/miss counters (servers account per-sweep, not per-store)."""
        payload = self._entries.get(key)
        if payload is None:
            return None
        try:
            return SimulationResult.from_payload(payload)
        except (TypeError, KeyError, ValueError, AttributeError):
            # Corrupt entry (hand-edited, or written by an
            # incompatible build): drop it and recompute.
            del self._entries[key]
            self._dirty += 1  # the drop must eventually persist too
            return None

    def get_payload(self, key: str) -> Optional[dict]:
        """Raw stored payload for a precomputed key (no validation)."""
        return self._entries.get(key)

    def put(self, cfg: SimulationConfig, result: SimulationResult) -> None:
        self.put_payload(self.key(cfg), result.to_payload())

    def put_payload(self, key: str, payload: dict) -> None:
        """Insert a raw payload under a precomputed key (batched)."""
        self._entries[key] = payload
        self._dirty += 1
        if (
            self._dirty >= self.flush_every
            or time.monotonic() - self._last_flush >= self.flush_interval
        ):
            self.flush()

    def flush(self) -> None:
        """Atomically persist the cache (no-op while nothing is dirty).

        Write-to-temp + ``os.replace`` guarantees the on-disk file is
        always a complete document -- a crash mid-write leaves the old
        cache untouched.  A failed flush keeps the in-memory entries and
        emits a structured warning (results are recomputable, so this is
        degraded service, not an error).
        """
        if self._dirty == 0:
            return
        doc = {
            "schema": CACHE_SCHEMA_VERSION,
            "salt": self.salt,
            "checksum": _entries_checksum(self._entries),
            "entries": self._entries,
        }
        tmp = self.path.with_name(f"{self.path.name}.tmp{os.getpid()}")
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "w") as fh:
                fh.write(json.dumps(doc, indent=1))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
            self._dirty = 0
            self._last_flush = time.monotonic()
            self.flushes += 1
        except OSError as exc:
            # Entries stay dirty (a later flush retries); resetting the
            # interval clock keeps a dead disk from warning per insert.
            self._last_flush = time.monotonic()
            emit_warning(
                "cache_flush_failed",
                f"cannot persist sweep cache to {self.path}: {exc} "
                "(results stay in memory for this run)",
                path=str(self.path),
            )
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass


@dataclass
class PointFailure:
    """Structured record of one sweep point that could not be computed.

    ``kind`` is ``"exception"`` (the worker raised), ``"crash"`` (the
    worker process died without reporting -- killed, OOM, segfault) or
    ``"timeout"`` (exceeded the per-point wall-clock budget).
    ``detail`` carries machine-readable context when available, e.g. a
    watchdog deadlock snapshot.
    """

    index: int  # position in the sweep's config list
    key: str  # salted config key (joins cache/checkpoint records)
    kind: str  # "exception" | "crash" | "timeout"
    error: str  # exception type name or synthetic code
    message: str
    attempts: int  # total attempts made (1 = failed without retry)
    injection_rate: float = float("nan")
    detail: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


class SweepPointError(RuntimeError):
    """Raised by :func:`run_sweep` (``on_failure="raise"``) when a point
    exhausts its attempts; ``failure`` holds the structured record."""

    def __init__(self, failure: PointFailure) -> None:
        super().__init__(
            f"sweep point {failure.index} failed after "
            f"{failure.attempts} attempt(s): [{failure.kind}] "
            f"{failure.error}: {failure.message}"
        )
        self.failure = failure


@dataclass
class SweepStats:
    """Progress counters handed to reporters after every point."""

    total: int
    completed: int = 0
    cache_hits: int = 0
    retries: int = 0
    failures: List[PointFailure] = field(default_factory=list)
    started_at: float = field(default_factory=time.monotonic)

    @property
    def failed(self) -> int:
        return len(self.failures)

    @property
    def simulated(self) -> int:
        return self.completed - self.cache_hits

    @property
    def elapsed(self) -> float:
        return time.monotonic() - self.started_at

    @property
    def sims_per_sec(self) -> float:
        """Simulation throughput; 0.0 (never a division error or a
        garbage rate) when nothing was simulated yet or the sweep
        finished instantly -- e.g. an all-cache-hit rerun where
        ``elapsed`` can be 0 at clock resolution."""
        elapsed = self.elapsed
        if self.simulated <= 0 or elapsed <= 0.0:
            return 0.0
        return self.simulated / elapsed

    @property
    def eta_seconds(self) -> float:
        """Estimated seconds left: 0.0 once every point is done (the
        all-cache-hit case included), ``nan`` while no rate estimate
        exists yet."""
        remaining = self.total - self.completed
        if remaining <= 0:
            return 0.0
        rate = self.sims_per_sec
        return remaining / rate if rate > 0 else float("nan")


class SweepReporter:
    """Progress sink; subclass and override what you need."""

    def sweep_started(self, stats: SweepStats) -> None:  # pragma: no cover
        pass

    def point_done(
        self, cfg: SimulationConfig, result: SimulationResult,
        cached: bool, stats: SweepStats,
    ) -> None:  # pragma: no cover
        pass

    def point_failed(
        self, cfg: SimulationConfig, failure: PointFailure, stats: SweepStats,
    ) -> None:  # pragma: no cover
        pass

    def sweep_finished(self, stats: SweepStats) -> None:  # pragma: no cover
        pass


class NullReporter(SweepReporter):
    """Silent default."""


class MultiReporter(SweepReporter):
    """Fan every reporter callback out to several sinks (e.g. console
    progress plus a JSONL telemetry log)."""

    def __init__(self, *reporters: SweepReporter) -> None:
        self.reporters = [r for r in reporters if r is not None]

    def sweep_started(self, stats: SweepStats) -> None:
        for r in self.reporters:
            r.sweep_started(stats)

    def point_done(self, cfg, result, cached, stats) -> None:
        for r in self.reporters:
            r.point_done(cfg, result, cached, stats)

    def point_failed(self, cfg, failure, stats) -> None:
        for r in self.reporters:
            r.point_failed(cfg, failure, stats)

    def sweep_finished(self, stats: SweepStats) -> None:
        for r in self.reporters:
            r.sweep_finished(stats)


class ConsoleReporter(SweepReporter):
    """Human-readable progress on ``stream`` (default: stderr)."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr

    def _emit(self, text: str) -> None:
        print(text, file=self.stream, flush=True)

    def sweep_started(self, stats: SweepStats) -> None:
        self._emit(f"sweep: {stats.total} point(s)")

    def point_done(self, cfg, result, cached, stats) -> None:
        source = "cache" if cached else f"{result.avg_latency:8.1f} cyc"
        eta = stats.eta_seconds
        eta_text = f"{eta:4.0f}s" if eta == eta else "   ?"
        self._emit(
            f"  [{stats.completed:>3}/{stats.total}] "
            f"rate={cfg.injection_rate:.3f} {source:>12}  "
            f"hits={stats.cache_hits}  "
            f"{stats.sims_per_sec:5.2f} sims/s  eta {eta_text}"
        )

    def point_failed(self, cfg, failure, stats) -> None:
        self._emit(
            f"  [{stats.completed:>3}/{stats.total}] "
            f"rate={cfg.injection_rate:.3f}       FAILED  "
            f"[{failure.kind}] {failure.error}: {failure.message} "
            f"(after {failure.attempts} attempt(s))"
        )

    def sweep_finished(self, stats: SweepStats) -> None:
        failed = f", {stats.failed} failed" if stats.failed else ""
        retried = f", {stats.retries} retrie(s)" if stats.retries else ""
        self._emit(
            f"sweep done: {stats.completed} point(s) in {stats.elapsed:.1f}s "
            f"({stats.cache_hits} from cache, "
            f"{stats.sims_per_sec:.2f} sims/s{failed}{retried})"
        )


def run_point(
    cfg: SimulationConfig,
    cache: Optional[ResultCache] = None,
    sim_fn: Optional[Callable[[SimulationConfig], SimulationResult]] = None,
) -> SimulationResult:
    """One cached point, computed inline on a miss."""
    if cache is not None:
        hit = cache.get(cfg)
        if hit is not None:
            return hit
    result = (sim_fn or run_simulation)(cfg)
    if cache is not None:
        cache.put(cfg, result)
    return result


def _point_entry(conn, worker_fn, cfg_dict) -> None:
    """Child-process entry: run one point, report through the pipe.

    Every outcome is reduced to a picklable tuple; an exception's
    ``snapshot`` attribute (e.g. a watchdog deadlock snapshot) rides
    along as machine-readable detail.
    """
    try:
        payload = worker_fn(cfg_dict)
        conn.send(("ok", payload))
    except BaseException as exc:  # report everything; the parent judges
        detail = getattr(exc, "snapshot", None)
        if detail is not None and not isinstance(detail, dict):
            detail = None
        try:
            conn.send(("error", type(exc).__name__, str(exc), detail))
        except Exception:
            pass  # parent is gone or detail unpicklable; exit silently
    finally:
        conn.close()


def _run_hardened_pool(
    configs: Sequence[SimulationConfig],
    pending: List[int],
    jobs: int,
    record: Callable[[int, SimulationResult], None],
    fail: Callable[[int, str, str, str, Optional[dict], int], None],
    stats: SweepStats,
    timeout: Optional[float],
    retries: int,
    backoff: float,
    worker_fn: Callable[[dict], dict],
) -> None:
    """One process per point with crash/timeout isolation.

    Unlike a shared executor, a worker that dies (or is killed past its
    deadline) takes down exactly one attempt: the point is retried with
    exponential backoff until its attempt budget runs out, then handed
    to ``fail`` -- which either records a :class:`PointFailure` or
    raises, per the sweep's ``on_failure`` policy.
    """
    ctx = mp.get_context()
    # (not-before time, index, attempt#) -- a heap so backoff-delayed
    # retries interleave correctly with first attempts.
    ready: List[tuple] = [(0.0, i, 1) for i in pending]
    heapq.heapify(ready)
    running: Dict[Any, tuple] = {}  # recv conn -> (index, attempt, proc, deadline)

    def launch(index: int, attempt: int) -> None:
        recv_conn, send_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_point_entry,
            args=(send_conn, worker_fn, configs[index].to_dict()),
            daemon=True,
        )
        proc.start()
        send_conn.close()  # child holds the write end now
        deadline = time.monotonic() + timeout if timeout is not None else None
        running[recv_conn] = (index, attempt, proc, deadline)

    def reap(proc) -> None:
        proc.join(timeout=5.0)
        if proc.is_alive():  # pragma: no cover - pathological worker
            proc.kill()
            proc.join(timeout=5.0)

    def handle_failure(
        index: int, attempt: int, kind: str, error: str,
        message: str, detail: Optional[dict],
    ) -> None:
        if attempt <= retries:
            stats.retries += 1
            delay = backoff * (2 ** (attempt - 1))
            heapq.heappush(ready, (time.monotonic() + delay, index, attempt + 1))
            return
        fail(index, kind, error, message, detail, attempt)

    try:
        while ready or running:
            now = time.monotonic()
            while ready and len(running) < jobs and ready[0][0] <= now:
                _, index, attempt = heapq.heappop(ready)
                launch(index, attempt)

            waits: List[float] = []
            if ready and len(running) < jobs:
                waits.append(max(ready[0][0] - now, 0.0))
            for _, _, _, deadline in running.values():
                if deadline is not None:
                    waits.append(max(deadline - now, 0.0))
            wait_for = min(waits) if waits else None

            if running:
                readable = mp_connection.wait(list(running), timeout=wait_for)
            else:
                # Nothing in flight; sleep until the next retry is due.
                if wait_for:
                    time.sleep(wait_for)
                continue

            for conn in readable:
                index, attempt, proc, _ = running.pop(conn)
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    msg = None  # died without reporting
                conn.close()
                reap(proc)
                if msg is None:
                    handle_failure(
                        index, attempt, "crash", "WorkerCrashed",
                        f"worker process exited with code {proc.exitcode} "
                        "before reporting a result", None,
                    )
                elif msg[0] == "ok":
                    record(index, SimulationResult.from_payload(msg[1]))
                else:
                    _, etype, emessage, detail = msg
                    handle_failure(
                        index, attempt, "exception", etype, emessage, detail
                    )

            if timeout is not None:
                now = time.monotonic()
                expired = [
                    conn
                    for conn, (_, _, _, deadline) in running.items()
                    if deadline is not None and deadline <= now
                ]
                for conn in expired:
                    index, attempt, proc, _ = running.pop(conn)
                    proc.terminate()
                    reap(proc)
                    conn.close()
                    handle_failure(
                        index, attempt, "timeout", "PointTimeout",
                        f"exceeded the {timeout:g}s wall-clock budget", None,
                    )
    finally:
        # On abort (on_failure="raise" or KeyboardInterrupt), don't
        # leave orphaned simulations burning CPU.
        for conn, (_, _, proc, _) in running.items():
            proc.terminate()
            conn.close()
        for _, (_, _, proc, _) in running.items():
            reap(proc)


class PointScheduler:
    """Transport-agnostic executor for a sweep's pending points.

    :func:`run_sweep` owns everything around the scheduling loop --
    cache lookups, checkpoint recovery/journaling, reporters, failure
    policy -- and hands the scheduler only the points that actually
    need computing.  Implementations decide *where* the work runs:

    * :class:`InlineScheduler` -- this process, one point at a time;
    * :class:`ProcessPoolScheduler` -- the hardened one-process-per-
      point local pool (crash/timeout isolation);
    * :class:`repro.serve.client.RemoteScheduler` -- a ``repro serve``
      job-queue server sharding points across worker fleets.

    All three are bit-identical by contract: every simulation seeds its
    RNG streams purely from ``(config.seed, terminal_id)``, so *where* a
    point runs can never change *what* it returns.
    """

    def run(
        self,
        configs: Sequence[SimulationConfig],
        pending: List[int],
        record: Callable[..., None],
        fail: Callable[[int, str, str, str, Optional[dict], int], None],
        stats: SweepStats,
    ) -> None:
        """Compute every ``configs[i]`` for ``i in pending``.

        Call ``record(i, result)`` per completed point (keyword
        ``cached=True`` when it was served from a warm store rather
        than computed) and ``fail(i, kind, error, message, detail,
        attempts)`` for a point whose attempt budget is exhausted --
        ``fail`` raises under ``on_failure="raise"``, so it must be
        allowed to propagate.
        """
        raise NotImplementedError


class InlineScheduler(PointScheduler):
    """Serial in-process execution with bounded retry."""

    def __init__(
        self,
        sim_fn: Optional[Callable[[SimulationConfig], SimulationResult]] = None,
        retries: int = 0,
        backoff: float = 1.0,
    ) -> None:
        self.sim_fn = sim_fn or run_simulation
        self.retries = retries
        self.backoff = backoff

    def run(self, configs, pending, record, fail, stats) -> None:
        for i in pending:
            attempt = 0
            while True:
                attempt += 1
                try:
                    result = self.sim_fn(configs[i])
                except Exception as exc:
                    if attempt <= self.retries:
                        stats.retries += 1
                        time.sleep(self.backoff * (2 ** (attempt - 1)))
                        continue
                    detail = getattr(exc, "snapshot", None)
                    if detail is not None and not isinstance(detail, dict):
                        detail = None
                    fail(i, "exception", type(exc).__name__, str(exc),
                         detail, attempt)
                    break
                else:
                    record(i, result)
                    break


class ProcessPoolScheduler(PointScheduler):
    """One hardened OS process per point (see :func:`_run_hardened_pool`)."""

    def __init__(
        self,
        jobs: int = 1,
        timeout: Optional[float] = None,
        retries: int = 0,
        backoff: float = 1.0,
        worker_fn: Optional[Callable[[dict], dict]] = None,
    ) -> None:
        self.jobs = max(jobs, 1)
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.worker_fn = worker_fn or run_simulation_worker

    def run(self, configs, pending, record, fail, stats) -> None:
        _run_hardened_pool(
            configs, pending, self.jobs, record, fail, stats,
            self.timeout, self.retries, self.backoff, self.worker_fn,
        )


def run_sweep(
    configs: Sequence[SimulationConfig],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    reporter: Optional[SweepReporter] = None,
    sim_fn: Optional[Callable[[SimulationConfig], SimulationResult]] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff: float = 1.0,
    on_failure: str = "raise",
    checkpoint=None,
    worker_fn: Optional[Callable[[dict], dict]] = None,
    scheduler: Optional[PointScheduler] = None,
) -> List[Optional[SimulationResult]]:
    """Evaluate every config, in input order, cache-first.

    ``jobs > 1`` fans cache misses out across worker processes; results
    are bit-identical to a serial run because each point is seeded only
    by its own config.  ``sim_fn`` substitutes the simulator for the
    *inline* path (tests inject analytic models); the process pool runs
    ``worker_fn`` (default: the real :func:`run_simulation_worker`),
    which must be an importable module-level callable.

    Hardening:

    * ``timeout`` -- per-point wall-clock budget in seconds.  Enforced
      by running points in their own processes, so a non-``None``
      timeout routes even ``jobs=1`` sweeps through the pool (unless
      ``sim_fn`` pins them inline).
    * ``retries``/``backoff`` -- each failed point is retried up to
      ``retries`` more times, delayed ``backoff * 2**(attempt-1)``
      seconds.
    * ``on_failure`` -- ``"raise"`` (default) aborts the sweep with
      :class:`SweepPointError` on the first exhausted point;
      ``"record"`` appends a :class:`PointFailure` to
      ``stats.failures``, leaves that result slot ``None`` and lets the
      rest of the sweep complete.
    * ``checkpoint`` -- a
      :class:`~repro.eval.checkpoint.SweepCheckpoint`: completed points
      are journaled as they land and recovered points are served
      without recomputation, so a sweep killed mid-flight resumes where
      it stopped.
    * ``scheduler`` -- an explicit :class:`PointScheduler` overrides
      the default selection above; ``repro sweep --connect`` passes a
      :class:`~repro.serve.client.RemoteScheduler` here to shard the
      pending points across a job-queue server's worker fleet.
    """
    if on_failure not in ("raise", "record"):
        raise ValueError(f"on_failure must be 'raise' or 'record', got {on_failure!r}")
    reporter = reporter or NullReporter()
    stats = SweepStats(total=len(configs))
    reporter.sweep_started(stats)

    results: List[Optional[SimulationResult]] = [None] * len(configs)
    keys = [config_key(cfg, cache.salt if cache is not None else None)
            for cfg in configs]
    pending: List[int] = []
    for i, cfg in enumerate(configs):
        hit = cache.get(cfg) if cache is not None else None
        if hit is None and checkpoint is not None:
            payload = checkpoint.recovered.get(keys[i])
            if payload is not None:
                try:
                    hit = SimulationResult.from_payload(payload)
                except (TypeError, KeyError, ValueError, AttributeError):
                    hit = None
                else:
                    if cache is not None:
                        cache.put(cfg, hit)
        if hit is not None:
            results[i] = hit
            stats.completed += 1
            stats.cache_hits += 1
            reporter.point_done(cfg, hit, True, stats)
        else:
            pending.append(i)

    def record(i: int, result: SimulationResult, cached: bool = False) -> None:
        # ``cached=True`` means a scheduler served the point from a warm
        # store (e.g. the serve server's shared cache): it still lands in
        # the local cache, but counts as a hit and is not re-journaled.
        results[i] = result
        if cache is not None:
            cache.put(configs[i], result)
        if checkpoint is not None and not cached:
            checkpoint.record(keys[i], result.to_payload())
        stats.completed += 1
        if cached:
            stats.cache_hits += 1
        reporter.point_done(configs[i], result, cached, stats)

    def fail(
        i: int, kind: str, error: str, message: str,
        detail: Optional[dict], attempts: int,
    ) -> None:
        failure = PointFailure(
            index=i,
            key=keys[i],
            kind=kind,
            error=error,
            message=message,
            attempts=attempts,
            injection_rate=configs[i].injection_rate,
            detail=detail,
        )
        if on_failure == "raise":
            raise SweepPointError(failure)
        stats.failures.append(failure)
        stats.completed += 1
        reporter.point_failed(configs[i], failure, stats)

    if scheduler is None:
        # Default selection preserves the pre-PointScheduler behavior
        # exactly: sim_fn pins execution inline (tests inject analytic
        # models); jobs>1 or a timeout route through the hardened pool.
        use_pool = sim_fn is None and (jobs > 1 or timeout is not None)
        if use_pool:
            scheduler = ProcessPoolScheduler(
                jobs=jobs, timeout=timeout, retries=retries,
                backoff=backoff, worker_fn=worker_fn,
            )
        else:
            scheduler = InlineScheduler(
                sim_fn=sim_fn, retries=retries, backoff=backoff,
            )
    try:
        if pending:
            scheduler.run(configs, pending, record, fail, stats)
    finally:
        # Aborted or not, never leave the journal handle open; an
        # aborted sweep keeps its file so --resume can pick it up.
        if checkpoint is not None:
            checkpoint.close()
        # Batched cache persistence: whatever landed since the last
        # threshold-triggered flush is written out exactly once here.
        if cache is not None:
            cache.flush()

    if checkpoint is not None and stats.failed == 0:
        checkpoint.complete()  # finished cleanly: nothing left to resume
    reporter.sweep_finished(stats)
    return results
