"""Parallel sweep-execution engine with a persistent result cache.

Every latency-vs-load curve in the paper's evaluation (Figures 13/14
and all network-level ablations) is an embarrassingly parallel bag of
independent :class:`~repro.netsim.simulator.SimulationConfig` points:
Becker & Dally sweep six design points across many injection rates
(Section 5), and each point is a self-contained cycle-accurate run.
This module supplies the machinery the per-figure drivers share:

* :func:`run_sweep` fans points out across worker processes
  (``jobs > 1``) or runs them inline (``jobs <= 1``).  Results come
  back in input order, and because every simulation derives its RNG
  streams purely from ``(config.seed, terminal_id)``, parallel results
  are bit-identical to serial ones.

* :class:`ResultCache` memoizes completed
  :class:`~repro.netsim.simulator.SimulationResult` objects on disk,
  keyed by a stable hash of the *full* config plus a code-version salt
  (``SIMULATOR_REV``), with atomic writes and per-entry corruption
  recovery.  Re-running a figure benchmark pays only for points whose
  configuration (or the simulator itself) actually changed.

* :class:`SweepReporter` is a pluggable progress sink;
  :class:`ConsoleReporter` prints points done, cache hits, sims/sec
  and an ETA.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, TextIO

from ..netsim.simulator import (
    SIMULATOR_REV,
    SimulationConfig,
    SimulationResult,
    run_simulation,
    run_simulation_worker,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "config_key",
    "default_cache_path",
    "ResultCache",
    "SweepReporter",
    "NullReporter",
    "ConsoleReporter",
    "MultiReporter",
    "SweepStats",
    "run_point",
    "run_sweep",
]

# Schema of the cache *file* (layout/keying).  Orthogonal to
# SIMULATOR_REV, which tracks the semantics of the cached *values*.
CACHE_SCHEMA_VERSION = 1


def config_key(cfg: SimulationConfig, salt: Optional[str] = None) -> str:
    """Stable cache key for one simulation point.

    Hashes the canonical JSON form of every config field plus a salt
    that defaults to the simulator code revision, so any config change
    *or* simulator-semantics bump yields a fresh key.
    """
    if salt is None:
        salt = f"sim-rev-{SIMULATOR_REV}"
    canonical = json.dumps(cfg.to_dict(), sort_keys=True)
    digest = hashlib.sha256(f"{salt}|{canonical}".encode()).hexdigest()
    return digest[:32]


def default_cache_path() -> Path:
    """``REPRO_SWEEP_CACHE`` override or a per-user cache file."""
    return Path(
        os.environ.get(
            "REPRO_SWEEP_CACHE",
            str(Path.home() / ".cache" / "repro-noc-sweeps.json"),
        )
    )


class ResultCache:
    """Versioned on-disk memo of completed simulation results.

    File layout::

        {"schema": 1, "salt": "sim-rev-1", "entries": {key: payload}}

    A schema or salt mismatch discards the stored entries (stale
    numbers must never be served); an unreadable file starts empty; an
    individually corrupt entry is dropped at lookup time and recomputed.
    Writes go through a temp file + ``os.replace`` so a crash mid-write
    can never truncate an existing cache.
    """

    def __init__(self, path: Optional[os.PathLike] = None) -> None:
        self.path = Path(path) if path is not None else default_cache_path()
        self.salt = f"sim-rev-{SIMULATOR_REV}"
        self.hits = 0
        self.misses = 0
        self._entries: Dict[str, dict] = {}
        self._load()

    def _load(self) -> None:
        try:
            raw = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return
        if not isinstance(raw, dict):
            return
        if raw.get("schema") != CACHE_SCHEMA_VERSION or raw.get("salt") != self.salt:
            return  # versioned invalidation: drop stale entries wholesale
        entries = raw.get("entries")
        if isinstance(entries, dict):
            self._entries = {
                k: v for k, v in entries.items() if isinstance(v, dict)
            }

    def __len__(self) -> int:
        return len(self._entries)

    def key(self, cfg: SimulationConfig) -> str:
        return config_key(cfg, self.salt)

    def get(self, cfg: SimulationConfig) -> Optional[SimulationResult]:
        """Cached result for ``cfg``, or ``None`` (counted as a miss)."""
        key = self.key(cfg)
        payload = self._entries.get(key)
        if payload is not None:
            try:
                result = SimulationResult.from_payload(payload)
            except (TypeError, KeyError, ValueError, AttributeError):
                # Corrupt entry (hand-edited, or written by an
                # incompatible build): drop it and recompute.
                del self._entries[key]
                result = None
            else:
                self.hits += 1
                return result
        self.misses += 1
        return None

    def put(self, cfg: SimulationConfig, result: SimulationResult) -> None:
        self._entries[self.key(cfg)] = result.to_payload()
        self.flush()

    def flush(self) -> None:
        """Atomically persist the cache; best-effort like CostCache."""
        doc = {
            "schema": CACHE_SCHEMA_VERSION,
            "salt": self.salt,
            "entries": self._entries,
        }
        tmp = self.path.with_name(f"{self.path.name}.tmp{os.getpid()}")
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(json.dumps(doc, indent=1))
            os.replace(tmp, self.path)
        except OSError:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass


@dataclass
class SweepStats:
    """Progress counters handed to reporters after every point."""

    total: int
    completed: int = 0
    cache_hits: int = 0
    started_at: float = field(default_factory=time.monotonic)

    @property
    def simulated(self) -> int:
        return self.completed - self.cache_hits

    @property
    def elapsed(self) -> float:
        return time.monotonic() - self.started_at

    @property
    def sims_per_sec(self) -> float:
        """Simulation throughput; 0.0 (never a division error or a
        garbage rate) when nothing was simulated yet or the sweep
        finished instantly -- e.g. an all-cache-hit rerun where
        ``elapsed`` can be 0 at clock resolution."""
        elapsed = self.elapsed
        if self.simulated <= 0 or elapsed <= 0.0:
            return 0.0
        return self.simulated / elapsed

    @property
    def eta_seconds(self) -> float:
        """Estimated seconds left: 0.0 once every point is done (the
        all-cache-hit case included), ``nan`` while no rate estimate
        exists yet."""
        remaining = self.total - self.completed
        if remaining <= 0:
            return 0.0
        rate = self.sims_per_sec
        return remaining / rate if rate > 0 else float("nan")


class SweepReporter:
    """Progress sink; subclass and override what you need."""

    def sweep_started(self, stats: SweepStats) -> None:  # pragma: no cover
        pass

    def point_done(
        self, cfg: SimulationConfig, result: SimulationResult,
        cached: bool, stats: SweepStats,
    ) -> None:  # pragma: no cover
        pass

    def sweep_finished(self, stats: SweepStats) -> None:  # pragma: no cover
        pass


class NullReporter(SweepReporter):
    """Silent default."""


class MultiReporter(SweepReporter):
    """Fan every reporter callback out to several sinks (e.g. console
    progress plus a JSONL telemetry log)."""

    def __init__(self, *reporters: SweepReporter) -> None:
        self.reporters = [r for r in reporters if r is not None]

    def sweep_started(self, stats: SweepStats) -> None:
        for r in self.reporters:
            r.sweep_started(stats)

    def point_done(self, cfg, result, cached, stats) -> None:
        for r in self.reporters:
            r.point_done(cfg, result, cached, stats)

    def sweep_finished(self, stats: SweepStats) -> None:
        for r in self.reporters:
            r.sweep_finished(stats)


class ConsoleReporter(SweepReporter):
    """Human-readable progress on ``stream`` (default: stderr)."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr

    def _emit(self, text: str) -> None:
        print(text, file=self.stream, flush=True)

    def sweep_started(self, stats: SweepStats) -> None:
        self._emit(f"sweep: {stats.total} point(s)")

    def point_done(self, cfg, result, cached, stats) -> None:
        source = "cache" if cached else f"{result.avg_latency:8.1f} cyc"
        eta = stats.eta_seconds
        eta_text = f"{eta:4.0f}s" if eta == eta else "   ?"
        self._emit(
            f"  [{stats.completed:>3}/{stats.total}] "
            f"rate={cfg.injection_rate:.3f} {source:>12}  "
            f"hits={stats.cache_hits}  "
            f"{stats.sims_per_sec:5.2f} sims/s  eta {eta_text}"
        )

    def sweep_finished(self, stats: SweepStats) -> None:
        self._emit(
            f"sweep done: {stats.completed} point(s) in {stats.elapsed:.1f}s "
            f"({stats.cache_hits} from cache, "
            f"{stats.sims_per_sec:.2f} sims/s)"
        )


def run_point(
    cfg: SimulationConfig,
    cache: Optional[ResultCache] = None,
    sim_fn: Optional[Callable[[SimulationConfig], SimulationResult]] = None,
) -> SimulationResult:
    """One cached point, computed inline on a miss."""
    if cache is not None:
        hit = cache.get(cfg)
        if hit is not None:
            return hit
    result = (sim_fn or run_simulation)(cfg)
    if cache is not None:
        cache.put(cfg, result)
    return result


def run_sweep(
    configs: Sequence[SimulationConfig],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    reporter: Optional[SweepReporter] = None,
    sim_fn: Optional[Callable[[SimulationConfig], SimulationResult]] = None,
) -> List[SimulationResult]:
    """Evaluate every config, in input order, cache-first.

    ``jobs > 1`` fans cache misses out across a process pool; results
    are bit-identical to a serial run because each point is seeded only
    by its own config.  ``sim_fn`` substitutes the simulator for the
    *inline* path (tests inject analytic models); the process pool
    always runs the real :func:`run_simulation_worker`.
    """
    reporter = reporter or NullReporter()
    stats = SweepStats(total=len(configs))
    reporter.sweep_started(stats)

    results: List[Optional[SimulationResult]] = [None] * len(configs)
    pending: List[int] = []
    for i, cfg in enumerate(configs):
        hit = cache.get(cfg) if cache is not None else None
        if hit is not None:
            results[i] = hit
            stats.completed += 1
            stats.cache_hits += 1
            reporter.point_done(cfg, hit, True, stats)
        else:
            pending.append(i)

    def record(i: int, result: SimulationResult) -> None:
        results[i] = result
        if cache is not None:
            cache.put(configs[i], result)
        stats.completed += 1
        reporter.point_done(configs[i], result, False, stats)

    if pending and jobs > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {
                pool.submit(run_simulation_worker, configs[i].to_dict()): i
                for i in pending
            }
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                for fut in done:
                    record(futures[fut], SimulationResult.from_payload(fut.result()))
    else:
        fn = sim_fn or run_simulation
        for i in pending:
            record(i, fn(configs[i]))

    reporter.sweep_finished(stats)
    return results  # type: ignore[return-value]  # every slot is filled
