"""Plain-text rendering of the paper-style figures.

The benchmark harness prints each figure as a table of series (no
plotting dependencies are available offline); these helpers keep the
formatting consistent across benchmarks and EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["format_table", "format_curves", "format_cost_results"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Fixed-width ASCII table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_curves(
    x_label: str,
    xs: Sequence[float],
    series: dict,
    title: str = "",
) -> str:
    """Table with one column per named series (curve-style figures)."""
    headers = [x_label] + list(series.keys())
    rows: List[List[object]] = []
    for i, x in enumerate(xs):
        row: List[object] = [x]
        for ys in series.values():
            row.append(ys[i] if i < len(ys) else None)
        rows.append(row)
    return format_table(headers, rows, title)


def format_cost_results(results, title: str = "") -> str:
    """Table for a list of :class:`repro.eval.cost.CostResult`."""
    rows = []
    for r in results:
        if r.failed:
            rows.append([r.curve, r.variant, "FAILED (capacity)", "-", "-", "-"])
        else:
            rows.append(
                [r.curve, r.variant, f"{r.delay_ns:.3f}",
                 f"{r.area_um2:.0f}", f"{r.power_mw:.3f}", r.num_cells]
            )
    return format_table(
        ["variant", "config", "delay (ns)", "area (um2)", "power (mW)", "cells"],
        rows,
        title,
    )
