"""The paper's design points and allocator variant enumerations.

Six design points (Section 3): an 8x8 mesh (P=5, one terminal per
router) and a 4x4 flattened butterfly with concentration 4 (P=10), each
with 1, 2 or 4 VCs per packet class.  Mesh points are 2x1xC (request/
reply message classes, one resource class); flattened-butterfly points
are 2x2xC (UGAL adds a second resource class).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..core.vc_partition import VCPartition

__all__ = [
    "DesignPoint",
    "MESH_POINTS",
    "FBFLY_POINTS",
    "ALL_POINTS",
    "VC_VARIANTS",
    "SWITCH_VARIANTS",
    "SPECULATION_SCHEMES",
]


@dataclass(frozen=True)
class DesignPoint:
    """One (topology, VC configuration) evaluation point."""

    topology: str  # "mesh" | "fbfly"
    num_ports: int
    vcs_per_class: int

    @property
    def partition(self) -> VCPartition:
        if self.topology == "mesh":
            return VCPartition.mesh(self.vcs_per_class)
        return VCPartition.fbfly(self.vcs_per_class)

    @property
    def num_vcs(self) -> int:
        return self.partition.num_vcs

    @property
    def label(self) -> str:
        return f"{self.topology} {self.partition.describe()}"


MESH_POINTS: Tuple[DesignPoint, ...] = tuple(
    DesignPoint("mesh", 5, c) for c in (1, 2, 4)
)
FBFLY_POINTS: Tuple[DesignPoint, ...] = tuple(
    DesignPoint("fbfly", 10, c) for c in (1, 2, 4)
)
ALL_POINTS: Tuple[DesignPoint, ...] = MESH_POINTS + FBFLY_POINTS

# (arch, arbiter) pairs plotted in Figures 5/6/10/11.  The wavefront
# variant uses round-robin pre-selection arbiters only (Section 4.3.1).
VC_VARIANTS: List[Tuple[str, str]] = [
    ("sep_if", "m"),
    ("sep_if", "rr"),
    ("sep_of", "m"),
    ("sep_of", "rr"),
    ("wf", "rr"),
]
SWITCH_VARIANTS: List[Tuple[str, str]] = list(VC_VARIANTS)

# Order matches the three points per curve in Figures 10/11.
SPECULATION_SCHEMES: Tuple[str, ...] = ("nonspec", "pessimistic", "conventional")
