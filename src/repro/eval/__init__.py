"""Experiment harness regenerating every table and figure of the paper.

See DESIGN.md for the experiment index; ``benchmarks/`` drives these
entry points, one module per figure.
"""

from .cost import (
    CostCache,
    CostResult,
    sparse_savings,
    speculation_delay_savings,
    switch_allocator_costs,
    vc_allocator_costs,
)
from .design_points import (
    ALL_POINTS,
    FBFLY_POINTS,
    MESH_POINTS,
    SPECULATION_SCHEMES,
    SWITCH_VARIANTS,
    VC_VARIANTS,
    DesignPoint,
)
from .matching import (
    DEFAULT_RATES,
    QualityCurve,
    switch_matching_quality,
    vc_matching_quality,
)
from .figures import EXPERIMENTS, Experiment, format_experiment_index, list_experiments
from .rtl_quality import rtl_switch_matching_quality
from .runner import (
    ConsoleReporter,
    NullReporter,
    ResultCache,
    SweepReporter,
    SweepStats,
    config_key,
    run_point,
    run_sweep,
)
from .netperf import (
    LatencyCurve,
    SweepPoint,
    latency_sweep,
    saturation_throughput,
    zero_load_latency,
)
from .tables import format_cost_results, format_curves, format_table

__all__ = [
    "ALL_POINTS",
    "ConsoleReporter",
    "CostCache",
    "CostResult",
    "NullReporter",
    "ResultCache",
    "SweepReporter",
    "SweepStats",
    "config_key",
    "run_point",
    "run_sweep",
    "DEFAULT_RATES",
    "DesignPoint",
    "EXPERIMENTS",
    "Experiment",
    "format_experiment_index",
    "list_experiments",
    "FBFLY_POINTS",
    "LatencyCurve",
    "MESH_POINTS",
    "QualityCurve",
    "SPECULATION_SCHEMES",
    "SWITCH_VARIANTS",
    "SweepPoint",
    "VC_VARIANTS",
    "format_cost_results",
    "rtl_switch_matching_quality",
    "format_curves",
    "format_table",
    "latency_sweep",
    "saturation_throughput",
    "sparse_savings",
    "speculation_delay_savings",
    "switch_allocator_costs",
    "switch_matching_quality",
    "vc_allocator_costs",
    "vc_matching_quality",
    "zero_load_latency",
]
