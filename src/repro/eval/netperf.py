"""Network-level performance sweeps (Figures 13 & 14).

Latency-vs-injection-rate curves plus the derived metrics the paper's
text quotes: zero-load latency and saturation throughput (the offered
load at which average latency crosses a multiple of zero-load).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence

from ..netsim.simulator import SimulationConfig, SimulationResult, run_simulation
from .runner import ResultCache, SweepReporter, run_point, run_sweep

__all__ = [
    "SweepPoint",
    "LatencyCurve",
    "latency_sweep",
    "zero_load_latency",
    "saturation_throughput",
]


@dataclass
class SweepPoint:
    rate: float
    latency: float
    accepted: float
    saturated: bool
    misspeculations: int = 0
    speculative_wins: int = 0
    # Tail-latency percentiles from the run's LatencySummary; ``None``
    # (not NaN, which would break equality checks) when no packets were
    # measured.
    p50: Optional[float] = None
    p95: Optional[float] = None
    p99: Optional[float] = None
    #: True when the point's simulation failed (timeout, worker crash,
    #: watchdog abort) under ``on_failure="record"``; the numeric
    #: fields are then placeholders, not measurements.
    failed: bool = False


@dataclass
class LatencyCurve:
    label: str
    points: List[SweepPoint]

    @property
    def zero_load(self) -> float:
        return self.points[0].latency if self.points else float("inf")

    def saturation_rate(
        self,
        threshold_factor: float = 3.0,
        zero_load: Optional[float] = None,
    ) -> float:
        """Offered load at which latency exceeds ``factor`` x zero-load.

        Linearly interpolates between the last stable point and the
        first unstable one; returns the last measured rate if the curve
        never saturates over the sweep.

        ``zero_load`` overrides the curve's own zero-load latency --
        pass a common reference when comparing schemes whose zero-load
        latencies differ (e.g. speculative vs non-speculative routers),
        otherwise the lower-latency scheme is held to a stricter
        absolute threshold.
        """
        z = zero_load if zero_load is not None else self.zero_load
        limit = threshold_factor * z
        prev = None
        for pt in self.points:
            # A failed point (timeout / watchdog abort) is treated as
            # saturated: the fabric could not sustain that load.
            bad = pt.failed or pt.saturated or pt.latency > limit
            if bad and prev is not None:
                if (
                    pt.failed
                    or pt.latency == float("inf")
                    or pt.latency <= prev.latency
                ):
                    return prev.rate
                frac = (limit - prev.latency) / (pt.latency - prev.latency)
                frac = min(max(frac, 0.0), 1.0)
                return prev.rate + frac * (pt.rate - prev.rate)
            if bad:
                return pt.rate
            prev = pt
        return self.points[-1].rate if self.points else 0.0


def _to_point(rate: float, res: Optional[SimulationResult]) -> SweepPoint:
    if res is None:
        # The point failed under on_failure="record": keep its slot in
        # the curve (so rates stay aligned) but mark it.
        return SweepPoint(
            rate, float("inf"), 0.0, True, failed=True,
        )
    summary = res.latency_summary
    return SweepPoint(
        rate,
        res.avg_latency,
        res.accepted_flit_rate,
        res.saturated,
        res.misspeculations,
        res.speculative_wins,
        p50=summary.p50 if summary is not None else None,
        p95=summary.p95 if summary is not None else None,
        p99=summary.p99 if summary is not None else None,
    )


def latency_sweep(
    base: SimulationConfig,
    rates: Sequence[float],
    label: str = "",
    stop_after_saturation: bool = True,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    reporter: Optional[SweepReporter] = None,
    sim_fn: Optional[Callable[[SimulationConfig], SimulationResult]] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff: float = 1.0,
    on_failure: str = "raise",
    checkpoint=None,
    scheduler=None,
) -> LatencyCurve:
    """Run the simulator across ``rates`` and collect a latency curve.

    ``jobs > 1`` evaluates the points through the parallel sweep engine
    (:mod:`repro.eval.runner`); ``cache`` memoizes completed points on
    disk.  With ``stop_after_saturation`` the curve is truncated just
    past the first saturated point: the serial path stops simulating
    there, while the parallel/reporter path computes all points and
    truncates afterwards, so both produce identical ``SweepPoint``
    sequences.

    A non-``None`` ``reporter`` routes even serial sweeps through
    :func:`~repro.eval.runner.run_sweep` so per-point progress
    callbacks fire.  ``sim_fn`` substitutes the simulator on the inline
    path (the CLI uses it to attach a :mod:`repro.obs` observer); the
    process pool always runs the real uninstrumented worker.

    ``timeout``/``retries``/``backoff``/``on_failure``/``checkpoint``/
    ``scheduler`` pass straight through to
    :func:`~repro.eval.runner.run_sweep`; with ``on_failure="record"``
    a failed point keeps its slot in the curve as a :class:`SweepPoint`
    with ``failed=True``, and a non-``None`` ``scheduler`` (e.g. a
    :class:`~repro.serve.client.RemoteScheduler`) decides where cache
    misses are computed.
    """
    configs = [replace(base, injection_rate=rate) for rate in rates]
    points: List[SweepPoint] = []
    hardened = (
        timeout is not None
        or retries
        or checkpoint is not None
        or on_failure != "raise"
    )
    if jobs > 1 or reporter is not None or hardened or scheduler is not None:
        results = run_sweep(
            configs, jobs=jobs, cache=cache, reporter=reporter, sim_fn=sim_fn,
            timeout=timeout, retries=retries, backoff=backoff,
            on_failure=on_failure, checkpoint=checkpoint, scheduler=scheduler,
        )
        for rate, res in zip(rates, results):
            points.append(_to_point(rate, res))
            if stop_after_saturation and res is not None and res.saturated:
                break
    else:
        for rate, cfg in zip(rates, configs):
            res = run_point(cfg, cache=cache, sim_fn=sim_fn or run_simulation)
            points.append(_to_point(rate, res))
            if stop_after_saturation and res.saturated:
                break
        if cache is not None:
            cache.flush()  # persistence is batched; see ResultCache
    return LatencyCurve(label or base.sw_alloc_arch, points)


def zero_load_latency(
    base: SimulationConfig,
    rate: float = 0.02,
    cache: Optional[ResultCache] = None,
) -> float:
    """Average latency at (near) zero load."""
    cfg = replace(base, injection_rate=rate)
    return run_point(cfg, cache=cache, sim_fn=run_simulation).avg_latency


def saturation_throughput(
    base: SimulationConfig,
    lo: float = 0.05,
    hi: float = 1.0,
    iterations: int = 6,
    threshold_factor: float = 3.0,
    cache: Optional[ResultCache] = None,
) -> float:
    """Binary-search the offered load where latency crosses
    ``threshold_factor`` x zero-load (the paper's saturation metric).

    Inherently sequential (each probe depends on the last), but every
    probe is memoized through ``cache`` when one is supplied.
    """
    z = zero_load_latency(base, cache=cache)
    limit = threshold_factor * z

    def stable(rate: float) -> bool:
        res = run_point(
            replace(base, injection_rate=rate), cache=cache,
            sim_fn=run_simulation,
        )
        return not res.saturated and res.avg_latency <= limit

    try:
        if not stable(lo):
            return lo
        for _ in range(iterations):
            mid = 0.5 * (lo + hi)
            if stable(mid):
                lo = mid
            else:
                hi = mid
        return lo
    finally:
        if cache is not None:
            cache.flush()  # persistence is batched; see ResultCache
