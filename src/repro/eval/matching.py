"""Open-loop matching-quality experiments (Section 3.1, Figures 7 & 12).

Streams of pseudo-random request matrices are fed to each allocator and
the resulting grant counts are normalized against a maximum-size
allocator driven with the same requests.  The paper uses 10 000 request
matrices per point; ``num_samples`` is configurable so the benchmark
harness can trade precision for runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.maxsize import hopcroft_karp
from ..core.switch_allocator import SwitchAllocator
from ..core.vc_allocator import VCAllocator, VCRequest
from ..core.vc_partition import VCPartition
from .design_points import DesignPoint

__all__ = [
    "QualityCurve",
    "DEFAULT_RATES",
    "vc_matching_quality",
    "switch_matching_quality",
    "switch_request_grant_efficiency",
]

DEFAULT_RATES: Sequence[float] = (0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


@dataclass
class QualityCurve:
    """Matching quality vs request rate for one allocator."""

    label: str
    rates: List[float]
    quality: List[float]

    def at(self, rate: float) -> float:
        return self.quality[self.rates.index(rate)]


def _max_matching_size(adjacency: List[List[int]], num_right: int) -> int:
    match = hopcroft_karp(adjacency, num_right)
    return sum(1 for v in match if v != -1)


def vc_matching_quality(
    point: DesignPoint,
    archs: Sequence[str] = ("sep_if", "sep_of", "wf"),
    rates: Sequence[float] = DEFAULT_RATES,
    num_samples: int = 10_000,
    seed: int = 0,
    arbiter: str = "rr",
) -> Dict[str, QualityCurve]:
    """Figure 7: VC allocator matching quality.

    Each input VC independently holds a head flit with probability
    ``rate`` (the figure's "requests per VC per cycle"); the flit
    targets a uniformly random output port and a uniformly random legal
    successor resource class, with all ``C`` VCs of that class as
    candidates.
    """
    P = point.num_ports
    part = point.partition
    V = part.num_vcs
    n = P * V

    # Precompute candidate sets per (input VC class, successor class).
    successor_sets = []
    for v in range(V):
        m_in, r_in, _ = part.vc_fields(v)
        successor_sets.append(
            [tuple(part.class_vcs(m_in, r)) for r in part.successor_classes(r_in)]
        )

    curves: Dict[str, QualityCurve] = {}
    for arch in archs:
        alloc = VCAllocator(P, part, arch=arch, arbiter=arbiter, sparse=True)
        alloc.check_requests = False
        rng = np.random.default_rng(seed)
        qualities = []
        for rate in rates:
            total = 0
            total_max = 0
            for _ in range(num_samples):
                active = rng.random(n) < rate
                ports = rng.integers(P, size=n)
                class_pick = rng.random(n)
                requests: List[Optional[VCRequest]] = [None] * n
                adjacency: List[List[int]] = [[] for _ in range(n)]
                for i in np.flatnonzero(active):
                    v = i % V
                    choices = successor_sets[v]
                    cands = choices[int(class_pick[i] * len(choices))]
                    q = int(ports[i])
                    requests[i] = VCRequest(q, cands)
                    base = q * V
                    adjacency[i] = [base + u for u in cands]
                grants = alloc.allocate(requests)
                total += sum(g is not None for g in grants)
                total_max += _max_matching_size(adjacency, n)
            qualities.append(total / total_max if total_max else 1.0)
        curves[arch] = QualityCurve(arch, list(rates), qualities)
    return curves


def switch_request_grant_efficiency(
    point: DesignPoint,
    rate: float,
    num_samples: int = 1000,
    seed: int = 0,
    arch: str = "sep_if",
    arbiter: str = "rr",
) -> float:
    """Grants per *request* for random request matrices at ``rate``.

    Unlike :func:`switch_matching_quality` (grants normalized against a
    maximum-size matching), this is the request-denominated matching
    efficiency -- the same statistic the :mod:`repro.obs` metrics layer
    accumulates per cycle inside the network simulator
    (``sa_grants / (sa_requests_nonspec + sa_requests_spec)``), so the
    two can be cross-checked: feed the in-network per-VC request
    probability in as ``rate`` and the offline number should agree
    within sampling noise plus the (modest) bias from correlated
    in-network request patterns.
    """
    P = point.num_ports
    V = point.num_vcs
    alloc = SwitchAllocator(P, V, arch=arch, arbiter=arbiter)
    alloc.check_requests = False
    rng = np.random.default_rng(seed)
    total_requests = 0
    total_grants = 0
    for _ in range(num_samples):
        active = rng.random((P, V)) < rate
        ports = rng.integers(P, size=(P, V))
        requests = [
            [int(ports[p, v]) if active[p, v] else None for v in range(V)]
            for p in range(P)
        ]
        grants = alloc.allocate(requests)
        total_requests += int(active.sum())
        total_grants += sum(g is not None for g in grants)
    return total_grants / total_requests if total_requests else 1.0


def switch_matching_quality(
    point: DesignPoint,
    archs: Sequence[str] = ("sep_if", "sep_of", "wf"),
    rates: Sequence[float] = DEFAULT_RATES,
    num_samples: int = 10_000,
    seed: int = 0,
    arbiter: str = "rr",
) -> Dict[str, QualityCurve]:
    """Figure 12: switch allocator matching quality.

    Each input VC independently requests a uniformly random output port
    with probability ``rate``.  The maximum-size reference matches on
    the port-level request matrix (at most one grant per input port and
    output port).
    """
    P = point.num_ports
    V = point.num_vcs

    curves: Dict[str, QualityCurve] = {}
    for arch in archs:
        alloc = SwitchAllocator(P, V, arch=arch, arbiter=arbiter)
        alloc.check_requests = False
        rng = np.random.default_rng(seed)
        qualities = []
        for rate in rates:
            total = 0
            total_max = 0
            for _ in range(num_samples):
                active = rng.random((P, V)) < rate
                ports = rng.integers(P, size=(P, V))
                requests = [
                    [
                        int(ports[p, v]) if active[p, v] else None
                        for v in range(V)
                    ]
                    for p in range(P)
                ]
                grants = alloc.allocate(requests)
                total += sum(g is not None for g in grants)
                adjacency = [
                    sorted({int(ports[p, v]) for v in range(V) if active[p, v]})
                    for p in range(P)
                ]
                total_max += _max_matching_size(adjacency, P)
            qualities.append(total / total_max if total_max else 1.0)
        curves[arch] = QualityCurve(arch, list(rates), qualities)
    return curves
