"""Append-only bench-history ledger and bench-report comparison.

Every ``repro bench`` invocation appends one fingerprinted record --
timestamp, git revision, ``SIMULATOR_REV``, host info, per-point
warm/cold timings, speedup ratios and (when ``--profile`` ran) phase
breakdowns -- to ``benchmarks/results/BENCH_history.jsonl``.  Unlike
``BENCH_kernel.json`` (a single overwritable snapshot), the ledger is a
trajectory: ``repro perf report`` renders it and
``repro bench --compare BASE`` diffs the current run against either a
recorded report or the last ledger record.
"""

from __future__ import annotations

import json
import subprocess
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

__all__ = [
    "HISTORY_SCHEMA",
    "git_fingerprint",
    "build_history_record",
    "append_history",
    "read_history",
    "load_base",
    "format_compare",
]

HISTORY_SCHEMA = "repro/bench-history/v1"


def git_fingerprint(cwd: Optional[Path] = None) -> Dict[str, Any]:
    """Best-effort ``{"sha", "dirty"}`` of the working tree.

    Benchmarks may run outside a checkout (wheels, exported trees), so
    a failing git is recorded as ``sha=None`` rather than an error.
    """

    def _git(*args: str) -> Optional[str]:
        try:
            out = subprocess.run(
                ("git",) + args,
                cwd=str(cwd) if cwd is not None else None,
                capture_output=True,
                text=True,
                timeout=10,
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        if out.returncode != 0:
            return None
        return out.stdout.strip()

    sha = _git("rev-parse", "HEAD")
    if sha is None:
        return {"sha": None, "dirty": None}
    status = _git("status", "--porcelain")
    return {"sha": sha, "dirty": bool(status) if status is not None else None}


def build_history_record(
    report: Dict[str, Any], *, timestamp: Optional[float] = None
) -> Dict[str, Any]:
    """Compact fingerprinted ledger record for one bench report.

    Configs are dropped (the point label identifies the design point;
    the full config lives in the report snapshot) so the ledger stays
    cheap to append to and to plot.
    """
    from ..obs.telemetry import host_info

    points: List[Dict[str, Any]] = []
    for p in report.get("points", []):
        entry: Dict[str, Any] = {"label": p["label"], "cycles": p.get("cycles")}
        for kernel in ("fast", "reference", "compiled"):
            if kernel in p:
                entry[kernel] = {
                    "cold_s": p[kernel]["cold_s"],
                    "warm_s": p[kernel]["warm_s"],
                    "warm_cycles_per_s": p[kernel]["warm_cycles_per_s"],
                }
        for key in ("speedup_warm", "speedup_warm_compiled"):
            if key in p:
                entry[key] = p[key]
        if "profile" in p:
            entry["profile"] = p["profile"]
        points.append(entry)
    return {
        "schema": HISTORY_SCHEMA,
        "created": time.time() if timestamp is None else timestamp,
        "git": git_fingerprint(),
        "simulator_rev": report.get("simulator_rev"),
        "quick": report.get("quick"),
        "kernels": report.get("kernels"),
        "host": host_info(),
        "points": points,
    }


def append_history(record: Dict[str, Any], path: "Path | str") -> Path:
    """Append one record to the JSONL ledger (created on first use)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as fh:
        fh.write(json.dumps(record) + "\n")
    return path


def read_history(path: "Path | str") -> List[Dict[str, Any]]:
    """Parse the ledger, skipping blank/truncated trailing lines."""
    records = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            continue  # torn tail from a killed append
    return records


def load_base(path: "Path | str") -> Dict[str, Any]:
    """Load a comparison base: a bench report (``BENCH_kernel*.json``)
    or a history ledger (uses its most recent record)."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"comparison base {path} does not exist")
    if path.suffix == ".jsonl":
        records = read_history(path)
        if not records:
            raise ValueError(f"history ledger {path} holds no records")
        return records[-1]
    data = json.loads(path.read_text())
    if "points" not in data:
        raise ValueError(f"{path} is not a bench report or history record")
    return data


def _index_points(report: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    return {p["label"]: p for p in report.get("points", [])}


def format_compare(current: Dict[str, Any], base: Dict[str, Any]) -> str:
    """Per-point delta table (current vs base), with per-phase deltas
    whenever both sides carry profile data for a kernel."""
    base_pts = _index_points(base)
    base_id = base.get("git", {}).get("sha") or "recorded base"
    lines = [f"comparison vs {str(base_id)[:12]}"]
    for p in current.get("points", []):
        label = p["label"]
        b = base_pts.get(label)
        if b is None:
            lines.append(f"{label:<24} (no base point)")
            continue
        parts = []
        for key, name in (
            ("speedup_warm", "warm"),
            ("speedup_warm_compiled", "compiled"),
        ):
            if key in p and key in b:
                delta = p[key] - b[key]
                parts.append(
                    f"{name} {b[key]:.2f}x -> {p[key]:.2f}x ({delta:+.2f})"
                )
        for kernel in ("fast", "reference", "compiled"):
            if kernel in p and kernel in b:
                cur_w = p[kernel]["warm_s"]
                base_w = b[kernel]["warm_s"]
                if base_w:
                    parts.append(
                        f"{kernel} warm {base_w:.2f}s -> {cur_w:.2f}s "
                        f"({(cur_w - base_w) / base_w:+.0%})"
                    )
        lines.append(f"{label:<24} " + "; ".join(parts) if parts else label)
        cur_prof = p.get("profile", {})
        base_prof = b.get("profile", {})
        for kernel in sorted(set(cur_prof) & set(base_prof)):
            deltas = phase_deltas(cur_prof[kernel], base_prof[kernel])
            if not deltas:
                continue
            rendered = ", ".join(
                f"{ph} {d:+.3f}s"
                for ph, d in sorted(
                    deltas.items(), key=lambda kv: abs(kv[1]), reverse=True
                )
            )
            lines.append(f"    {kernel} phases: {rendered}")
    return "\n".join(lines)


def phase_deltas(
    current: Dict[str, Any], base: Dict[str, Any]
) -> Dict[str, float]:
    """Per-phase seconds delta between two profile records."""
    cur = current.get("phases", {})
    old = base.get("phases", {})
    return {
        ph: round(cur.get(ph, 0.0) - old.get(ph, 0.0), 6)
        for ph in sorted(set(cur) | set(old))
    }
