"""Implementation-cost sweeps (Figures 5, 6, 10, 11).

Runs the gate-level synthesis flow over every (design point, allocator
variant) combination and collects delay/area/power, recording capacity
failures where Design Compiler ran out of memory in the paper.  Results
are memoized in a JSON cache because the larger netlists take seconds
to build and characterize.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..hw.synthesis import (
    SynthesisCapacityError,
    synthesize_switch_allocator,
    synthesize_vc_allocator,
)
from .design_points import (
    SPECULATION_SCHEMES,
    SWITCH_VARIANTS,
    VC_VARIANTS,
    DesignPoint,
)

__all__ = [
    "CostResult",
    "CostCache",
    "vc_allocator_costs",
    "switch_allocator_costs",
    "sparse_savings",
    "speculation_delay_savings",
]


@dataclass
class CostResult:
    """One synthesized (or failed) design point."""

    label: str
    arch: str
    arbiter: str
    variant: str  # "sparse"/"dense" for VC; speculation scheme for switch
    delay_ns: Optional[float]
    area_um2: Optional[float]
    power_mw: Optional[float]
    num_cells: Optional[int]
    failed: bool = False

    @property
    def curve(self) -> str:
        return f"{self.arch}/{self.arbiter}"


class CostCache:
    """JSON-backed memo for synthesis results."""

    def __init__(self, path: Optional[str] = None) -> None:
        if path is None:
            path = os.environ.get(
                "REPRO_COST_CACHE",
                str(Path.home() / ".cache" / "repro-noc-alloc-costs.json"),
            )
        self.path = Path(path)
        self._data: Dict[str, dict] = {}
        if self.path.exists():
            try:
                self._data = json.loads(self.path.read_text())
            except (OSError, json.JSONDecodeError):
                self._data = {}

    def get(self, key: str) -> Optional[CostResult]:
        raw = self._data.get(key)
        return CostResult(**raw) if raw else None

    def put(self, key: str, result: CostResult) -> None:
        self._data[key] = asdict(result)
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text(json.dumps(self._data, indent=1))
        except OSError:
            pass  # cache is best-effort


def _run(key, cache, label, arch, arbiter, variant, fn) -> CostResult:
    if cache is not None:
        hit = cache.get(key)
        if hit is not None:
            return hit
    try:
        rep = fn()
        result = CostResult(
            label, arch, arbiter, variant,
            rep.delay_ns, rep.area_um2, rep.power_mw, rep.num_cells,
        )
    except SynthesisCapacityError:
        result = CostResult(label, arch, arbiter, variant, None, None, None, None, True)
    if cache is not None:
        cache.put(key, result)
    return result


def vc_allocator_costs(
    point: DesignPoint,
    variants: Sequence[Tuple[str, str]] = tuple(VC_VARIANTS),
    cache: Optional[CostCache] = None,
    size_iterations: int = 8,
) -> List[CostResult]:
    """Figures 5/6: each variant synthesized dense and sparse.

    Dense = the un-optimized baseline (runtime VC masks over the full
    range); sparse = with the Section 4.2 optimizations.  Failed points
    are reported with ``failed=True`` (single-point curves in the
    paper's figures).
    """
    results = []
    for arch, arbiter in variants:
        for sparse in (False, True):
            variant = "sparse" if sparse else "dense"
            key = f"vc|{point.label}|{arch}|{arbiter}|{variant}|v3"
            results.append(
                _run(
                    key, cache, point.label, arch, arbiter, variant,
                    lambda a=arch, b=arbiter, s=sparse: synthesize_vc_allocator(
                        point.num_ports, point.partition, a, b, s,
                        size_iterations=size_iterations,
                    ),
                )
            )
    return results


def switch_allocator_costs(
    point: DesignPoint,
    variants: Sequence[Tuple[str, str]] = tuple(SWITCH_VARIANTS),
    schemes: Sequence[str] = SPECULATION_SCHEMES,
    cache: Optional[CostCache] = None,
    size_iterations: int = 8,
) -> List[CostResult]:
    """Figures 10/11: three speculation points per variant curve."""
    results = []
    for arch, arbiter in variants:
        for scheme in schemes:
            key = f"sw|{point.label}|{arch}|{arbiter}|{scheme}|v3"
            results.append(
                _run(
                    key, cache, point.label, arch, arbiter, scheme,
                    lambda a=arch, b=arbiter, s=scheme: synthesize_switch_allocator(
                        point.num_ports, point.num_vcs, a, b, s,
                        size_iterations=size_iterations,
                    ),
                )
            )
    return results


def sparse_savings(results: Sequence[CostResult]) -> Dict[str, Dict[str, float]]:
    """Per-curve dense->sparse reductions (the Section 4.3.1 headline:
    up to 41%/90%/83% for delay/area/power)."""
    by_curve: Dict[str, Dict[str, CostResult]] = {}
    for r in results:
        by_curve.setdefault(r.curve, {})[r.variant] = r
    savings = {}
    for curve, pair in by_curve.items():
        dense = pair.get("dense")
        sparse = pair.get("sparse")
        if dense is None or sparse is None or dense.failed or sparse.failed:
            continue
        savings[curve] = {
            "delay": 1 - sparse.delay_ns / dense.delay_ns,
            "area": 1 - sparse.area_um2 / dense.area_um2,
            "power": 1 - sparse.power_mw / dense.power_mw,
        }
    return savings


def speculation_delay_savings(results: Sequence[CostResult]) -> Dict[str, float]:
    """Per-curve pessimistic-vs-conventional delay reduction (the
    Section 5.3.1 headline: up to 23%)."""
    by_curve: Dict[str, Dict[str, CostResult]] = {}
    for r in results:
        by_curve.setdefault(r.curve, {})[r.variant] = r
    out = {}
    for curve, pts in by_curve.items():
        conv = pts.get("conventional")
        pess = pts.get("pessimistic")
        if conv and pess and not conv.failed and not pess.failed:
            out[curve] = 1 - pess.delay_ns / conv.delay_ns
    return out
