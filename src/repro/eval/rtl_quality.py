"""RTL-level open-loop quality measurement (Section 3.1, literally).

The paper measures matching quality by simulating the *RTL* of each
allocator with pseudo-random request matrices.  ``repro.eval.matching``
uses the behavioural models for speed; this module drives the actual
gate-level netlists through :class:`repro.hw.simulate.NetlistSimulator`
instead, closing the loop on the substitution: the cross-validation
tests show gate == behavioural cycle-by-cycle for the switch
allocators, and this harness lets the benchmarks verify the aggregate
quality numbers agree as well.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..core.maxsize import hopcroft_karp
from ..hw.cells import CELL_INDEX
from ..hw.simulate import NetlistSimulator
from ..hw.sw_alloc_gates import build_switch_allocator_netlist
from .matching import QualityCurve

__all__ = ["rtl_switch_matching_quality"]

_DFF = CELL_INDEX["DFF"]


def _make_simulator(P: int, V: int, arch: str) -> NetlistSimulator:
    nl = build_switch_allocator_netlist(P, V, arch, "rr", "nonspec")
    sim = NetlistSimulator(nl, reg_init=1)
    if arch == "wf":
        # The wavefront's replicated-array diagonal ring is one-hot; its
        # registers are the first P created by the builder.
        regs = [i for i, k in enumerate(nl.kinds) if k == _DFF]
        for r in regs[:P]:
            sim.set_register(r, 0)
        sim.set_register(regs[0], 1)
    return sim


def rtl_switch_matching_quality(
    num_ports: int,
    num_vcs: int,
    archs: Sequence[str] = ("sep_if", "sep_of", "wf"),
    rates: Sequence[float] = (0.2, 0.6, 1.0),
    num_samples: int = 1000,
    seed: int = 0,
) -> Dict[str, QualityCurve]:
    """Figure 12 via gate-level simulation of the switch allocators.

    Requests follow the same distribution as
    :func:`repro.eval.matching.switch_matching_quality`; grants are read
    off the netlist's crossbar outputs and normalized against a
    maximum-size matching of the port-level request matrix.
    """
    P, V = num_ports, num_vcs
    curves: Dict[str, QualityCurve] = {}
    for arch in archs:
        sim = _make_simulator(P, V, arch)
        rng = np.random.default_rng(seed)
        qualities: List[float] = []
        for rate in rates:
            total = 0
            total_max = 0
            for _ in range(num_samples):
                active = rng.random((P, V)) < rate
                ports = rng.integers(P, size=(P, V))
                stim: List[int] = []
                for p in range(P):
                    for v in range(V):
                        q = int(ports[p, v]) if active[p, v] else -1
                        stim.extend(1 if qq == q else 0 for qq in range(P))
                out = sim.step(stim)
                vals = list(out.values())
                # Outputs interleave per port: P crossbar bits then V
                # VC-grant bits.
                stride = P + V
                for p in range(P):
                    total += sum(vals[p * stride : p * stride + P])
                adjacency = [
                    sorted({int(ports[p, v]) for v in range(V) if active[p, v]})
                    for p in range(P)
                ]
                match = hopcroft_karp(adjacency, P)
                total_max += sum(1 for m in match if m != -1)
            qualities.append(total / total_max if total_max else 1.0)
        curves[arch] = QualityCurve(f"rtl:{arch}", list(rates), qualities)
    return curves
