"""Kernel throughput benchmark (``repro bench``).

Measures simulator throughput -- simulated cycles per wall-clock second
-- for the three allocation kernels (``reference``, ``fast`` and the
per-design-point ``compiled`` kernel) on a fixed matrix of design
points, and emits a machine-readable report (``BENCH_kernel.json``).
Each kernel's first run of a point is reported as *cold* (includes
allocator/bytecode warm-up, code generation for the compiled kernel and
memory-allocator growth); *warm* is the best of ``warm_repeats``
further runs, interleaved between the kernels so slow host-speed drift
hits both alike (steady-state; the number the regression gate trends).

Because all kernels execute the identical cycle schedule (they are
bit-identical by construction -- see ``scripts/check_bit_identity.py``),
the warm speedup ratios are machine-independent figures of merit: CI
gates on them rather than on absolute cycles/sec, which vary with host
load and hardware (see ``scripts/check_bench_regression.py``).
``speedup_warm`` is reference-over-fast; ``speedup_warm_compiled`` is
fast-over-compiled (the compiled kernel's margin on top of the already
optimised fast kernel).

The flagship point is the 8x8 mesh with V=8 VCs under the paper's
wavefront allocator; the fast kernel is expected to hold >= 3x over
the reference there, and the compiled kernel >= 2x over fast.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..netsim.simulator import SIMULATOR_REV, SimulationConfig, run_simulation

__all__ = [
    "BENCH_SCHEMA",
    "BENCHED_KERNELS",
    "bench_points",
    "run_kernel_bench",
    "format_bench",
]

BENCH_SCHEMA = "repro/kernel-bench/v1"

#: Kernels the benchmark times, in interleave order.
BENCHED_KERNELS = ("fast", "reference", "compiled")

# warmup/measure/drain windows.  The quick windows are sized so the
# *fast* kernel still runs ~2s wall per point: much shorter and
# scheduler jitter (10-20% at ~1s) swamps the speedup ratio the
# regression gate trends.
_FULL_WINDOWS = dict(warmup_cycles=1000, measure_cycles=4000, drain_cycles=4000)
_QUICK_WINDOWS = dict(warmup_cycles=400, measure_cycles=1600, drain_cycles=1600)


def bench_points(quick: bool = False) -> List[Dict[str, Any]]:
    """The benchmark matrix: ``{"label", "config"}`` dicts.

    All points use the 8x8 mesh / flattened butterfly design points of
    the paper with V = 8 VCs (``vcs_per_class=4``) -- the configuration
    the fast kernel was tuned on.  ``quick`` keeps the cross-arch mesh
    points only and shortens the windows (CI smoke).
    """
    windows = _QUICK_WINDOWS if quick else _FULL_WINDOWS
    matrix = [
        # (label, topology, arch, injection rate)
        ("mesh-V8-wf-r0.15", "mesh", "wf", 0.15),
        ("mesh-V8-sep_if-r0.15", "mesh", "sep_if", 0.15),
        ("mesh-V8-sep_of-r0.15", "mesh", "sep_of", 0.15),
        ("mesh-V8-wf-r0.45", "mesh", "wf", 0.45),
        ("fbfly-V8-sep_if-r0.15", "fbfly", "sep_if", 0.15),
        ("fbfly-V8-wf-r0.15", "fbfly", "wf", 0.15),
    ]
    if quick:
        matrix = [m for m in matrix if m[1] == "mesh" and m[3] == 0.15]
    points = []
    for label, topo, arch, rate in matrix:
        cfg = SimulationConfig(
            topology=topo,
            vcs_per_class=4,
            injection_rate=rate,
            vc_alloc_arch=arch,
            sw_alloc_arch=arch,
            speculation="pessimistic",
            seed=3,
            **windows,
        )
        points.append({"label": label, "config": cfg})
    return points


def _time_run(cfg: SimulationConfig, kernel: str) -> float:
    t0 = time.perf_counter()
    run_simulation(cfg, kernel=kernel)
    return time.perf_counter() - t0


def run_kernel_bench(
    quick: bool = False,
    progress: Optional[Any] = None,
    warm_repeats: int = 2,
    kernels: Optional[Any] = None,
    profile: bool = False,
) -> Dict[str, Any]:
    """Run the full matrix under all kernels; return the report dict.

    ``kernels`` restricts the timed kernels (default: all of
    :data:`BENCHED_KERNELS`); speedup ratios are emitted only when both
    of their operand kernels were timed.  ``profile`` runs one *extra*
    instrumented pass per point per kernel (after the timed passes, so
    the cold/warm numbers stay clean of hook overhead) and attaches its
    per-phase wall-time breakdown under ``point["profile"][kernel]``.
    """
    timed = tuple(kernels) if kernels else BENCHED_KERNELS
    unknown = [k for k in timed if k not in BENCHED_KERNELS]
    if unknown:
        raise ValueError(
            f"unknown kernel(s) {unknown!r} (available: {BENCHED_KERNELS})"
        )
    report: Dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "simulator_rev": SIMULATOR_REV,
        "quick": quick,
        "kernels": list(timed),
        "profiled": bool(profile),
        "points": [],
    }
    for point in bench_points(quick):
        cfg: SimulationConfig = point["config"]
        # Nominal schedule length; both kernels execute the identical
        # cycle sequence, so ratios are exact even if the drain window
        # empties early.
        cycles = cfg.warmup_cycles + cfg.measure_cycles + cfg.drain_cycles
        entry: Dict[str, Any] = {
            "label": point["label"],
            "config": cfg.to_dict(),
            "cycles": cycles,
        }
        cold = {k: _time_run(cfg, k) for k in timed}
        # Warm repeats interleave the kernels so any monotone host-speed
        # drift biases all timings alike and cancels in the ratios;
        # min() is the standard noise-robust wall-clock estimator.
        warm_times: Dict[str, List[float]] = {k: [] for k in timed}
        for _ in range(max(1, warm_repeats)):
            for kernel in timed:
                warm_times[kernel].append(_time_run(cfg, kernel))
        for kernel in timed:
            warm = min(warm_times[kernel])
            entry[kernel] = {
                "cold_s": round(cold[kernel], 4),
                "warm_s": round(warm, 4),
                "cold_cycles_per_s": round(cycles / cold[kernel], 1),
                "warm_cycles_per_s": round(cycles / warm, 1),
            }
        if "reference" in entry and "fast" in entry:
            entry["speedup_cold"] = round(
                entry["reference"]["cold_s"] / entry["fast"]["cold_s"], 3
            )
            entry["speedup_warm"] = round(
                entry["reference"]["warm_s"] / entry["fast"]["warm_s"], 3
            )
        if "fast" in entry and "compiled" in entry:
            entry["speedup_cold_compiled"] = round(
                entry["fast"]["cold_s"] / entry["compiled"]["cold_s"], 3
            )
            entry["speedup_warm_compiled"] = round(
                entry["fast"]["warm_s"] / entry["compiled"]["warm_s"], 3
            )
        if profile:
            from ..obs.profiling import profile_point

            entry["profile"] = {k: profile_point(cfg, kernel=k) for k in timed}
        report["points"].append(entry)
        if progress is not None:
            parts = [
                f"{k} {entry[k]['warm_cycles_per_s']:.0f} cyc/s"
                for k in timed
            ]
            if "speedup_warm" in entry:
                parts.append(f"speedup {entry['speedup_warm']:.2f}x")
            if "speedup_warm_compiled" in entry:
                parts.append(
                    f"compiled {entry['speedup_warm_compiled']:.2f}x"
                )
            progress(f"{point['label']}: " + ", ".join(parts))
    return report


def format_bench(report: Dict[str, Any]) -> str:
    """Human-readable table for one report."""
    lines = [
        f"kernel benchmark (simulator rev {report['simulator_rev']}, "
        f"{'quick' if report['quick'] else 'full'} matrix)",
        f"{'point':<24} {'fast cyc/s':>12} {'ref cyc/s':>12} "
        f"{'cmpl cyc/s':>12} {'warm x':>8} {'cmpl x':>8}",
    ]
    # Reports written before the compiled kernel existed (or with a
    # restricted --kernel set) may lack entries; render blanks rather
    # than refusing.
    def cps(p, kernel, width=12):
        if kernel in p:
            return f"{p[kernel]['warm_cycles_per_s']:>{width}.0f}"
        return f"{'-':>{width}}"

    def ratio(p, key, width=8):
        if key in p:
            return f"{p[key]:>{width}.2f}"
        return f"{'-':>{width}}"

    for p in report["points"]:
        lines.append(
            f"{p['label']:<24} {cps(p, 'fast')} {cps(p, 'reference')} "
            f"{cps(p, 'compiled')} {ratio(p, 'speedup_warm')} "
            f"{ratio(p, 'speedup_warm_compiled')}"
        )
        for kernel, prof in sorted(p.get("profile", {}).items()):
            total = sum(prof.get("phases", {}).values()) or 1.0
            top = sorted(
                prof.get("phases", {}).items(),
                key=lambda kv: kv[1],
                reverse=True,
            )
            rendered = ", ".join(
                f"{name} {secs / total:.0%}" for name, secs in top if secs
            )
            lines.append(
                f"    {kernel} phases (coverage "
                f"{prof.get('coverage', 0.0):.1%}): {rendered}"
            )
    return "\n".join(lines)


def write_report(report: Dict[str, Any], path: Path) -> None:
    path.write_text(json.dumps(report, indent=2) + "\n")
