"""Resilience evaluation campaign: degradation curves vs link faults.

The campaign answers the robustness question the fault-aware routing
work (:mod:`repro.netsim.routing.ft`) exists to answer: *how does the
network degrade as permanent links die, with and without fault-tolerant
routing?*  For each fault count ``k`` it kills the same ``k`` links
under every routing mode (nested fault sets: the ``k``-fault set is a
prefix of the ``k+1``-fault set, so curves are comparable point to
point) and runs one simulation per (mode, k) through the ordinary sweep
machinery -- cache, checkpoint and structured failure handling all
apply.

The artifact (schema ``repro/resilience/v1``) records, per mode, the
delivered fraction, sustained throughput and tail latency as functions
of the number of faulted links.  ``scripts/validate_telemetry.py``
checks the shape; ``repro perf report --resilience`` renders it as a
dashboard panel.

Total VC count is held fixed across modes: fault-tolerant mesh routing
spends one resource class on the escape layer (R = 2), so with
``total_vcs`` V the ft mode runs V/4 VCs per class against the default
mode's V/2 -- an honest comparison charges the escape VCs to the ft
scheme rather than giving it extra buffering.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..faults import FaultPlan, LinkFault
from ..netsim.simulator import SimulationConfig, SimulationResult
from .runner import ResultCache, SweepReporter, run_sweep
from .tables import format_curves

__all__ = [
    "RESILIENCE_SCHEMA",
    "RESILIENCE_MODES",
    "mesh_link_candidates",
    "select_faulted_links",
    "link_fault_plan",
    "campaign_configs",
    "run_resilience_campaign",
    "format_resilience",
    "full_delivery_violations",
    "write_resilience_artifact",
    "load_resilience_artifact",
]

RESILIENCE_SCHEMA = "repro/resilience/v1"

# Routing modes the campaign compares, in presentation order.
RESILIENCE_MODES: Tuple[str, ...] = ("default", "ft_dor")

# Per-point fields copied from the simulation result into the artifact.
_POINT_METRICS = (
    "avg_latency",
    "accepted_flit_rate",
    "injected_flit_rate",
    "measured_packets",
    "packets_lost",
)


def mesh_link_candidates(k: int = 8) -> List[Tuple[int, int]]:
    """Every directed inter-router link of a ``k x k`` mesh as
    ``(router, output port)`` pairs, in deterministic scan order.

    Ejection (terminal) ports are excluded: killing an ejection port
    partitions its terminal from the whole network, which no routing
    scheme can route around -- the campaign studies *fabric* faults.
    """
    links: List[Tuple[int, int]] = []
    for rid in range(k * k):
        x, y = rid % k, rid // k
        if x + 1 < k:
            links.append((rid, 1))  # east
        if x > 0:
            links.append((rid, 2))  # west
        if y + 1 < k:
            links.append((rid, 3))  # north
        if y > 0:
            links.append((rid, 4))  # south
    return links


def select_faulted_links(
    count: int, seed: int, k: int = 8
) -> List[Tuple[int, int]]:
    """The first ``count`` links of a seeded permutation of the mesh's
    directed links.

    One permutation per seed means fault sets nest across counts: the
    3-fault set is the 2-fault set plus one more link, so degradation
    curves measure the marginal cost of each additional fault rather
    than jumping between unrelated fault patterns.
    """
    candidates = mesh_link_candidates(k)
    if count < 0 or count > len(candidates):
        raise ValueError(
            f"fault count must be in [0, {len(candidates)}], got {count}"
        )
    # Decorrelated from the simulation RNG (which is seeded by the bare
    # integer) via a fixed stream tag in the seed sequence.
    order = np.random.default_rng([seed, 0x5E51]).permutation(len(candidates))
    return [candidates[i] for i in order[:count]]


def link_fault_plan(
    count: int, seed: int, k: int = 8
) -> Optional[FaultPlan]:
    """A :class:`FaultPlan` killing ``count`` links permanently from
    cycle 0 (``None`` for a fault-free baseline point)."""
    if count == 0:
        return None
    return FaultPlan(
        link_faults=tuple(
            LinkFault(router, port, 0, None)
            for router, port in select_faulted_links(count, seed, k)
        )
    )


def _vcs_per_class(mode: str, total_vcs: int) -> int:
    """VCs per class holding the *total* VC budget fixed across modes.

    The default mesh partition has 2 message classes x 1 resource class
    (V = 2C); fault-tolerant DOR adds an escape resource class
    (V = 4C).  Keeping V constant charges the ft scheme for its escape
    buffering.
    """
    classes = 4 if mode == "ft_dor" else 2
    if total_vcs % classes or total_vcs // classes not in (1, 2, 4):
        raise ValueError(
            f"total_vcs={total_vcs} does not divide into {classes} "
            f"classes for mode {mode!r} (vcs_per_class must be 1, 2 or 4)"
        )
    return total_vcs // classes


def campaign_configs(
    fault_counts: Sequence[int],
    modes: Sequence[str] = RESILIENCE_MODES,
    injection_rate: float = 0.05,
    total_vcs: int = 8,
    sw_alloc_arch: str = "sep_if",
    vc_alloc_arch: str = "sep_if",
    speculation: str = "pessimistic",
    cycles: int = 1000,
    seed: int = 1,
) -> List[Tuple[str, int, SimulationConfig]]:
    """One config per (mode, fault count), flattened mode-major.

    The fault plan for a given count is identical across modes -- only
    the routing (and the VC partition it implies) differs.
    """
    for mode in modes:
        if mode not in RESILIENCE_MODES:
            raise ValueError(
                f"unknown resilience mode {mode!r}; "
                f"expected one of {', '.join(RESILIENCE_MODES)}"
            )
    out: List[Tuple[str, int, SimulationConfig]] = []
    for mode in modes:
        base = SimulationConfig(
            topology="mesh",
            vcs_per_class=_vcs_per_class(mode, total_vcs),
            injection_rate=injection_rate,
            sw_alloc_arch=sw_alloc_arch,
            vc_alloc_arch=vc_alloc_arch,
            speculation=speculation,
            routing="ft_dor" if mode == "ft_dor" else "default",
            warmup_cycles=cycles // 3,
            measure_cycles=cycles,
            drain_cycles=cycles,
            seed=seed,
            # Faulted fabrics can wedge (a partition without ft
            # routing); the watchdog converts that into a degraded
            # completion instead of burning every configured cycle.
            watchdog_cycles=max(1000, cycles),
        )
        for count in fault_counts:
            cfg = replace(base, faults=link_fault_plan(count, seed))
            out.append((mode, count, cfg))
    return out


def _point_record(
    count: int, result: Optional[SimulationResult]
) -> Dict[str, object]:
    """One artifact curve point from one simulation result (``None`` =
    the point failed after retries and was recorded, not raised)."""
    if result is None:
        return {"link_faults": count, "failed": True}
    point: Dict[str, object] = {
        "link_faults": count,
        "failed": False,
        "delivered_fraction": result.delivered_fraction,
        "degraded_mode": result.degraded_mode,
    }
    for name in _POINT_METRICS:
        point[name] = getattr(result, name)
    if result.latency_summary is not None:
        point["p99"] = result.latency_summary.p99
    counters = result.fault_counters
    point["escape_reroutes"] = counters.get("escape_reroutes", 0)
    point["packets_unroutable"] = counters.get("packets_unroutable", 0)
    point["watchdog_degraded_trips"] = counters.get(
        "watchdog_degraded_trips", 0
    )
    return point


def run_resilience_campaign(
    fault_counts: Sequence[int],
    modes: Sequence[str] = RESILIENCE_MODES,
    injection_rate: float = 0.05,
    total_vcs: int = 8,
    sw_alloc_arch: str = "sep_if",
    vc_alloc_arch: str = "sep_if",
    speculation: str = "pessimistic",
    cycles: int = 1000,
    seed: int = 1,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    reporter: Optional[SweepReporter] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff: float = 1.0,
    checkpoint=None,
) -> Dict[str, object]:
    """Run the campaign and return the ``repro/resilience/v1`` artifact.

    Every (mode, fault count) point goes through :func:`run_sweep` with
    ``on_failure="record"``: a crashed or timed-out point becomes a
    ``{"failed": true}`` curve entry instead of aborting the campaign.
    """
    plan = campaign_configs(
        fault_counts,
        modes=modes,
        injection_rate=injection_rate,
        total_vcs=total_vcs,
        sw_alloc_arch=sw_alloc_arch,
        vc_alloc_arch=vc_alloc_arch,
        speculation=speculation,
        cycles=cycles,
        seed=seed,
    )
    results = run_sweep(
        [cfg for _, _, cfg in plan],
        jobs=jobs,
        cache=cache,
        reporter=reporter,
        timeout=timeout,
        retries=retries,
        backoff=backoff,
        on_failure="record",
        checkpoint=checkpoint,
    )
    curves: Dict[str, List[Dict[str, object]]] = {m: [] for m in modes}
    for (mode, count, _), result in zip(plan, results):
        curves[mode].append(_point_record(count, result))
    return {
        "schema": RESILIENCE_SCHEMA,
        "topology": "mesh",
        "total_vcs": total_vcs,
        "injection_rate": injection_rate,
        "sw_alloc_arch": sw_alloc_arch,
        "vc_alloc_arch": vc_alloc_arch,
        "speculation": speculation,
        "cycles": cycles,
        "seed": seed,
        "fault_counts": list(fault_counts),
        "faulted_links": {
            str(count): [list(link)
                         for link in select_faulted_links(count, seed)]
            for count in fault_counts
            if count
        },
        "curves": curves,
    }


def format_resilience(artifact: Dict[str, object]) -> str:
    """Text degradation table: one delivered-fraction / p99 column pair
    per routing mode, one row per fault count."""
    counts = artifact["fault_counts"]
    series: Dict[str, List[object]] = {}
    for mode, points in artifact["curves"].items():
        by_count = {p["link_faults"]: p for p in points}
        series[f"{mode} delivered"] = [
            None if (p := by_count.get(c)) is None or p.get("failed")
            else p["delivered_fraction"]
            for c in counts
        ]
        series[f"{mode} p99"] = [
            None if (p := by_count.get(c)) is None or p.get("failed")
            else p.get("p99")
            for c in counts
        ]
    title = (
        f"resilience: mesh V={artifact['total_vcs']} "
        f"{artifact['sw_alloc_arch']}/{artifact['speculation']} "
        f"rate={artifact['injection_rate']:g}"
    )
    return format_curves("faults", list(counts), series, title=title)


def full_delivery_violations(
    artifact: Dict[str, object], max_faults: int, mode: str = "ft_dor"
) -> List[str]:
    """Human-readable violations of the fault-tolerance guarantee:
    ``mode`` must deliver every offered packet, without a degraded-mode
    trip, for every point with at most ``max_faults`` faulted links.

    Empty list = guarantee holds (the CI resilience gate).
    """
    points = artifact["curves"].get(mode)
    if points is None:
        return [f"mode {mode!r} missing from the artifact"]
    problems: List[str] = []
    for point in points:
        count = point["link_faults"]
        if count > max_faults:
            continue
        if point.get("failed"):
            problems.append(f"{mode} k={count}: point failed to simulate")
            continue
        if point["delivered_fraction"] != 1.0:
            problems.append(
                f"{mode} k={count}: delivered fraction "
                f"{point['delivered_fraction']:.6f} != 1.0"
            )
        if point["degraded_mode"]:
            problems.append(f"{mode} k={count}: watchdog tripped "
                            f"(degraded mode)")
    return problems


def write_resilience_artifact(
    artifact: Dict[str, object], path: Path
) -> None:
    """Write the artifact as stable-keyed JSON (newline-terminated)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")


def load_resilience_artifact(path: Path) -> Dict[str, object]:
    """Read an artifact back, checking the schema marker."""
    artifact = json.loads(Path(path).read_text())
    schema = artifact.get("schema")
    if schema != RESILIENCE_SCHEMA:
        raise ValueError(
            f"{path}: expected schema {RESILIENCE_SCHEMA!r}, got {schema!r}"
        )
    return artifact
