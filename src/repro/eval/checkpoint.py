"""Append-only sweep checkpoints for crash-safe resume.

A long sweep interrupted by ``SIGINT``/``SIGKILL`` (or a machine
reboot) should not lose its completed points.  The persistent
:class:`~repro.eval.runner.ResultCache` already covers the common case,
but it is global, optional and user-relocatable; the checkpoint is a
*per-sweep* journal tied to the exact point list, so ``--resume`` can
prove it is continuing the same sweep it left off.

File format (JSONL, one object per line)::

    {"kind": "header", "schema": 1, "signature": "...", "total": 25}
    {"kind": "point", "key": "<config key>", "payload": {...}}
    ...

* The signature is a stable hash of the salted config keys *in sweep
  order* -- any change to the point list, the config contents, or the
  simulator revision produces a different signature, and a mismatched
  checkpoint is ignored (with a structured warning) rather than
  replayed.
* Lines are appended and flushed as each point completes.  A process
  killed mid-write leaves at most one truncated final line, which load
  tolerates by dropping it.
* :meth:`complete` removes the file: a finished sweep leaves nothing to
  resume.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..obs.metrics import emit_warning

__all__ = ["CHECKPOINT_SCHEMA_VERSION", "SweepCheckpoint", "sweep_signature"]

CHECKPOINT_SCHEMA_VERSION = 1


def sweep_signature(keys: Sequence[str]) -> str:
    """Stable identity of one sweep: its salted config keys, in order."""
    digest = hashlib.sha256("\n".join(keys).encode()).hexdigest()
    return digest[:32]


class SweepCheckpoint:
    """Append-only journal of completed points for one sweep."""

    def __init__(self, path: os.PathLike, signature: str) -> None:
        self.path = Path(path)
        self.signature = signature
        #: Payloads recovered from a previous interrupted run, keyed by
        #: config key.  Empty when starting fresh or when the on-disk
        #: journal belongs to a different sweep.
        self.recovered: Dict[str, dict] = {}
        self._fh = None
        self._load()

    # ------------------------------------------------------------------
    def _load(self) -> None:
        if not self.path.exists():
            return
        lines: List[str]
        try:
            lines = self.path.read_text().splitlines()
        except OSError as exc:
            emit_warning(
                "checkpoint_unreadable",
                f"cannot read sweep checkpoint {self.path}: {exc}",
                path=str(self.path),
            )
            return
        if not lines:
            return
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            header = None
        if (
            not isinstance(header, dict)
            or header.get("kind") != "header"
            or header.get("schema") != CHECKPOINT_SCHEMA_VERSION
        ):
            emit_warning(
                "checkpoint_bad_header",
                f"sweep checkpoint {self.path} has no valid header; ignoring it",
                path=str(self.path),
            )
            return
        if header.get("signature") != self.signature:
            emit_warning(
                "checkpoint_signature_mismatch",
                f"sweep checkpoint {self.path} belongs to a different sweep "
                "(point list, config contents or simulator revision changed); "
                "starting fresh",
                path=str(self.path),
                found=header.get("signature"),
                expected=self.signature,
            )
            return
        dropped = 0
        for line in lines[1:]:
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                # Interrupted mid-append: only the final line can be
                # truncated, but tolerate garbage anywhere.
                dropped += 1
                continue
            if (
                isinstance(row, dict)
                and row.get("kind") == "point"
                and isinstance(row.get("key"), str)
                and isinstance(row.get("payload"), dict)
            ):
                self.recovered[row["key"]] = row["payload"]
            else:
                dropped += 1
        if dropped:
            emit_warning(
                "checkpoint_partial_lines",
                f"dropped {dropped} unparsable line(s) from sweep checkpoint "
                f"{self.path} (interrupted mid-write)",
                path=str(self.path),
                dropped=dropped,
            )

    # ------------------------------------------------------------------
    def _open(self) -> None:
        if self._fh is not None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fresh = not self.path.exists() or not self.recovered
        if fresh:
            # Rewrite from scratch: header plus any recovered points, so
            # the journal never accumulates rows from abandoned sweeps.
            self._fh = open(self.path, "w")
            self._fh.write(
                json.dumps(
                    {
                        "kind": "header",
                        "schema": CHECKPOINT_SCHEMA_VERSION,
                        "signature": self.signature,
                    }
                )
                + "\n"
            )
            for key, payload in self.recovered.items():
                self._fh.write(
                    json.dumps({"kind": "point", "key": key, "payload": payload})
                    + "\n"
                )
        else:
            self._fh = open(self.path, "a")
        self._fh.flush()

    def record(self, key: str, payload: dict) -> None:
        """Append one completed point (flushed and fsynced immediately,
        so a SIGKILL loses at most the in-flight point)."""
        try:
            self._open()
            self._fh.write(
                json.dumps({"kind": "point", "key": key, "payload": payload})
                + "\n"
            )
            self._fh.flush()
            os.fsync(self._fh.fileno())
        except OSError as exc:
            emit_warning(
                "checkpoint_write_failed",
                f"cannot append to sweep checkpoint {self.path}: {exc}",
                path=str(self.path),
            )

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None

    def complete(self) -> None:
        """The sweep finished: nothing left to resume, remove the file."""
        self.close()
        try:
            self.path.unlink(missing_ok=True)
        except OSError as exc:
            emit_warning(
                "checkpoint_unlink_failed",
                f"cannot remove finished sweep checkpoint {self.path}: {exc}",
                path=str(self.path),
            )
