"""Compiled per-design-point allocation kernels (ROADMAP: compiled backend).

At simulator construction the ``compiled`` kernel generates straight-line
Python specialized for the router's concrete configuration -- unrolled
constants for the port/VC counts, pre-resolved arbiter kinds (round-robin
pointer pokes are inlined, matrix arbiters stay method calls), baked-in
sparse VC-transition candidate tables, and the departure/event-scheduling
path from :meth:`Router._depart` fully inlined.  The generated module is
compiled once per :class:`KernelSpec` and cached process-wide; every
router sharing a design point reuses the same factory.

Bit-identity contract: the generated step replicates
:meth:`Router._allocation_step_fast` exactly -- same grants, same arbiter
state evolution, same event-list append order -- for fault-free,
unobserved cycles.  When an observer or fault state is attached the
generated step de-specializes by delegating to the fast kernel, whose
hook semantics are the reference for instrumented runs.  The three-kernel
equivalence matrix in ``tests/perf`` and ``scripts/check_bit_identity.py``
pin this contract.

Each spec renders in two variants: the default one carries no phase
hooks at all (a profiler attach re-bootstraps into the other variant,
so unprofiled cycles pay exactly one extra ``profiler is None`` check),
and the *profiled* variant emits ``repro.obs.profiling`` phase marks
(routing / vc_alloc / link_traversal) inline.  Both variants are cached
per ``(spec, profiled)`` and both are rendered for the source linter.

The generated source is inspectable via ``repro bench --dump-kernel``.
It deliberately imports nothing and reads no clocks or RNGs; the repo
linter (``repro lint --source``) scans the rendered templates for
unseeded randomness / wall-clock reads like any simulation-package file.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Tuple

__all__ = [
    "KERNELS",
    "CodegenUnsupported",
    "KernelSpec",
    "spec_for_router",
    "generate_source",
    "source_for",
    "kernel_factory",
    "compiled_step_for",
    "template_specs",
    "iter_template_sources",
]

#: Registry of selectable simulation kernels, in oracle-first order.
KERNELS: Tuple[str, ...] = ("reference", "fast", "compiled")


class CodegenUnsupported(ValueError):
    """Raised when a router configuration cannot be specialized.

    Only reachable through non-standard allocator wiring (dense VC
    allocation or the ``rotate_priority=False`` wavefront ablation);
    every configuration reachable via :class:`SimulationConfig`
    specializes.
    """


@dataclass(frozen=True)
class KernelSpec:
    """The complete design point a generated kernel is specialized for."""

    num_ports: int
    num_message_classes: int
    num_resource_classes: int
    vcs_per_class: int
    vc_arch: str
    vc_arbiter: str
    sw_arch: str
    sw_arbiter: str
    scheme: str
    lookahead: bool

    @property
    def num_vcs(self) -> int:
        return (
            self.num_message_classes
            * self.num_resource_classes
            * self.vcs_per_class
        )

    def slug(self) -> str:
        """Filesystem/display identifier for the generated module."""
        la = "la" if self.lookahead else "nola"
        return (
            f"p{self.num_ports}-m{self.num_message_classes}"
            f"r{self.num_resource_classes}c{self.vcs_per_class}"
            f"-va_{self.vc_arch}_{self.vc_arbiter}"
            f"-sa_{self.sw_arch}_{self.sw_arbiter}-{self.scheme}-{la}"
        )


def spec_for_router(router) -> KernelSpec:
    """Derive the :class:`KernelSpec` of a constructed router.

    Raises :class:`CodegenUnsupported` for configurations the generator
    does not model (see the class docstring).
    """
    va = router.vc_alloc
    sw = router.sw_alloc
    part = router.partition
    if not va.sparse:
        raise CodegenUnsupported("compiled kernel requires sparse VC allocation")
    if va.arch == "wf":
        for wf in va._wavefronts:
            if not wf.rotate_priority:
                raise CodegenUnsupported(
                    "compiled kernel requires rotating wavefront priority"
                )
    ns_core = sw._nonspec_alloc
    for core in (ns_core, sw._spec_alloc):
        if core is not None and core._wavefront is not None:
            if not core._wavefront.rotate_priority:
                raise CodegenUnsupported(
                    "compiled kernel requires rotating wavefront priority"
                )
    return KernelSpec(
        num_ports=router.num_ports,
        num_message_classes=part.num_message_classes,
        num_resource_classes=part.num_resource_classes,
        vcs_per_class=part.vcs_per_class,
        vc_arch=va.arch,
        vc_arbiter=va.arbiter_kind,
        sw_arch=sw.arch,
        sw_arbiter=ns_core.arbiter_kind,
        scheme=sw.scheme,
        lookahead=router.lookahead,
    )


def template_specs() -> Tuple[KernelSpec, ...]:
    """Representative specs covering every generator branch.

    Used by the source linter (``repro lint --source``) to scan the
    rendered templates, and by the dump/inspection tests.
    """

    def mesh(va, vaa, sa, saa, scheme, lookahead=True):
        return KernelSpec(5, 2, 1, 2, va, vaa, sa, saa, scheme, lookahead)

    return (
        mesh("sep_if", "rr", "sep_if", "rr", "pessimistic"),
        mesh("sep_of", "m", "sep_of", "m", "conventional"),
        mesh("wf", "rr", "wf", "rr", "pessimistic"),
        mesh("sep_if", "rr", "sep_if", "rr", "nonspec"),
        mesh("sep_if", "fixed", "sep_if", "fixed", "pessimistic", False),
        # fbfly-shaped point: two resource classes, non-power-of-two V.
        KernelSpec(10, 2, 2, 3, "wf", "rr", "sep_if", "rr", "pessimistic", True),
    )


class _Emitter:
    """Indentation-tracking line buffer for the generated module."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.level = 0

    def line(self, text: str = "") -> None:
        self.lines.append("    " * self.level + text if text else "")

    def push(self) -> None:
        self.level += 1

    def pop(self) -> None:
        self.level -= 1

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


def _idx_exprs(n: int):
    """(div, mod) expression builders for a constant divisor ``n``."""
    if n & (n - 1) == 0 and n > 0:
        shift = n.bit_length() - 1
        mask = n - 1
        if shift == 0:
            return (lambda e: f"{e}"), (lambda e: "0")
        return (lambda e: f"({e} >> {shift})"), (lambda e: f"({e} & {mask})")
    return (lambda e: f"({e} // {n})"), (lambda e: f"({e} % {n})")


class _Gen:
    """Renders the specialized step function for one :class:`KernelSpec`.

    ``profiled=True`` renders the phase-hook variant: every routing
    call, VC-allocation core and inlined departure is bracketed with
    ``_prof.begin()`` / ``_prof.phase(...)`` marks.  The default render
    contains no profiling code at all beyond the entry-point
    de-specialization check.
    """

    def __init__(self, spec: KernelSpec, profiled: bool = False) -> None:
        self.spec = spec
        self.profiled = profiled
        self.P = spec.num_ports
        self.V = spec.num_vcs
        self.M = spec.num_message_classes
        self.R = spec.num_resource_classes
        self.C = spec.vcs_per_class
        self.RC = self.R * self.C
        self.divV, self.modV = _idx_exprs(self.V)
        self.divRC, self.modRC = _idx_exprs(self.RC)
        self.spec_on = spec.scheme != "nonspec"
        self.e = _Emitter()

    # -- phase-hook micro-ops ---------------------------------------------
    def pb(self) -> None:
        """Emit a phase-start mark (no-op in the unprofiled variant)."""
        if self.profiled:
            self.e.line("_pt_ = _prof.begin()")

    def pe(self, name: str) -> None:
        """Emit the matching phase-end attribution mark."""
        if self.profiled:
            self.e.line(f"_prof.phase({name!r}, _pt_)")

    # -- arbiter micro-ops ------------------------------------------------
    def select(self, res: str, arb: str, lst: str, kind: str) -> None:
        """Emit ``res = <kind arbiter at arb>.select_sparse(lst)``.

        ``lst`` is a non-empty ascending index list; round-robin is
        inlined as a pointer scan, matrix stays a method call, fixed
        priority folds to the first element.
        """
        e = self.e
        if kind == "rr":
            e.line(f"_sa_ = {arb}")
            e.line("_sp_ = _sa_._pointer")
            e.line(f"{res} = -1")
            e.line(f"for _sx_ in {lst}:")
            e.push()
            e.line("if _sx_ >= _sp_:")
            e.push()
            e.line(f"{res} = _sx_")
            e.line("break")
            e.pop()
            e.pop()
            e.line(f"if {res} < 0:")
            e.push()
            e.line(f"{res} = {lst}[0]")
            e.pop()
        elif kind == "fixed":
            e.line(f"{res} = {lst}[0]")
        else:
            e.line(f"{res} = {arb}.select_sparse({lst})")

    def advance(self, arb: str, winner: str, n: int, kind: str) -> None:
        """Emit the priority update of ``arb`` (an ``n``-input arbiter)."""
        e = self.e
        if kind == "rr":
            e.line(f"_aa_ = {arb}")
            e.line(f"_aw_ = {winner} + 1")
            e.line(f"_aa_._pointer = _aw_ if _aw_ < {n} else 0")
        elif kind == "m":
            e.line(f"{arb}.advance({winner})")
        # fixed: advance is validation-only (no state).

    def tree_advance(self, out: str, winner: str) -> None:
        """Emit ``_va_out_arbs[out].advance(winner)`` (P*V tree arbiter)."""
        e = self.e
        kind = self.spec.vc_arbiter
        if kind == "rr":
            e.line(f"_aa_ = _va_out_groups[{out}][{self.divV(winner)}]")
            e.line(f"_aw_ = {self.modV(winner)} + 1")
            e.line(f"_aa_._pointer = _aw_ if _aw_ < {self.V} else 0")
            e.line(f"_aa_ = _va_out_tops[{out}]")
            e.line(f"_aw_ = {self.divV(winner)} + 1")
            e.line(f"_aa_._pointer = _aw_ if _aw_ < {self.P} else 0")
        elif kind == "m":
            e.line(f"_va_out_arbs[{out}].advance({winner})")

    # -- grant bookkeeping ------------------------------------------------
    def va_commit(self, flat: str, q: str, u: str) -> None:
        """Emit the router-side commit of one VC grant (fused: the fast
        kernel commits after switch allocation, but switch allocation
        reads neither the input-VC records nor the output holders, so
        committing at grant time is behavior-identical)."""
        e = self.e
        e.line(f"_gi_ = _ivc_flat[{flat}]")
        e.line(f"_gi_.output_port = {q}")
        e.line(f"_gi_.output_vc = {u}")
        e.line(f"_holder[{q}][{u}] = ({self.divV(flat)}, {self.modV(flat)})")
        if self.spec_on:
            e.line(f"granted_now[{flat}] = ({q}, {u})")

    def depart(self, p: str, v: str) -> None:
        """Emit the inlined body of :meth:`Router._depart` for ``(p, v)``.

        Requires ``_fev``/``_cev``/``_sg`` in scope; event-list append
        order is exactly the fast kernel's (callers iterate departures
        in the same ascending-port order).
        """
        e = self.e
        self.pb()
        e.line(f"_pv_ = {p} * {self.V} + {v}")
        e.line("_di_ = _ivc_flat[_pv_]")
        e.line("_dq_ = _di_.output_port")
        e.line("_du_ = _di_.output_vc")
        e.line("_dqu_ = _di_.queue")
        e.line("_fl_ = _dqu_.popleft()")
        e.line("if _fl_.is_tail:")
        e.push()
        e.line("_di_.output_port = -1")
        e.line("_di_.output_vc = -1")
        e.line("_holder[_dq_][_du_] = None")
        e.pop()
        e.line("if not _dqu_:")
        e.push()
        e.line("_busy_discard(_pv_)")
        e.pop()
        e.line("_sg += 1")
        e.line("_port_flits[_dq_] += 1")
        e.line("_credits[_dq_][_du_] -= 1")
        e.line("_when_ = now + _out_del[_dq_]")
        e.line("_lst_ = _fev.get(_when_)")
        e.line("if _lst_ is None:")
        e.push()
        e.line("_fev[_when_] = [_out_pre[_dq_] + (_du_, _fl_)]")
        e.pop()
        e.line("else:")
        e.push()
        e.line("_lst_.append(_out_pre[_dq_] + (_du_, _fl_))")
        e.pop()
        e.line(f"_cp_ = _up_pre[{p}]")
        e.line("if _cp_ is not None:")
        e.push()
        e.line(f"_when_ = now + _up_del[{p}]")
        e.line("_lst_ = _cev.get(_when_)")
        e.line("if _lst_ is None:")
        e.push()
        e.line(f"_cev[_when_] = [_cp_ + ({v},)]")
        e.pop()
        e.line("else:")
        e.push()
        e.line(f"_lst_.append(_cp_ + ({v},))")
        e.pop()
        e.pop()
        self.pe("link_traversal")

    # -- switch-allocator cores -------------------------------------------
    def sw_core(self, items: str, pfx: str, commit: bool,
                store: Callable[[str, str, str], None]) -> None:
        """Emit one switch-allocator core over ``items``.

        ``pfx`` selects the arbiter closure set (``_sa`` / ``_sp``);
        ``commit`` applies priority updates at grant time (the staged
        variant leaves them to the speculative mask loop, which replays
        exactly the updates :meth:`SwitchAllocator.commit` would);
        ``store(p, v, q)`` emits the grant bookkeeping.
        """
        arch, kind = self.spec.sw_arch, self.spec.sw_arbiter
        e = self.e
        if arch == "sep_if":
            self._sw_sep_if(items, pfx, kind, commit, store)
        elif arch == "sep_of":
            self._sw_sep_of(items, pfx, kind, commit, store)
        else:
            self._sw_wf(items, pfx, kind, commit, store)

    def _sw_adv(self, pfx: str, kind: str, v: str, p: str, q: str) -> None:
        self.advance(f"{pfx}_vc_arbs[{p}]", v, self.V, kind)
        if self.spec.sw_arch != "wf":
            self.advance(f"{pfx}_port_arbs[{q}]", p, self.P, kind)

    def _sw_sep_if(self, items, pfx, kind, commit, store):
        e = self.e
        e.line(f"_n = len({items})")
        e.line("if _n == 1:")
        e.push()
        e.line(f"_p, _v, _q = {items}[0]")
        store("_p", "_v", "_q")
        if commit:
            self._sw_adv(pfx, kind, "_v", "_p", "_q")
        e.pop()
        e.line("else:")
        e.push()
        e.line("by_out = {}")
        e.line("bid_vc = {}")
        e.line("_i = 0")
        e.line("while _i < _n:")
        e.push()
        e.line(f"_t = {items}[_i]")
        e.line("_p = _t[0]")
        e.line("_v = _t[1]")
        e.line("_q = _t[2]")
        e.line("_j = _i + 1")
        e.line(f"if _j < _n and {items}[_j][0] == _p:")
        e.push()
        e.line("_vs = [_v]")
        e.line("_qs = [_q]")
        e.line(f"while _j < _n and {items}[_j][0] == _p:")
        e.push()
        e.line(f"_t = {items}[_j]")
        e.line("_vs.append(_t[1])")
        e.line("_qs.append(_t[2])")
        e.line("_j += 1")
        e.pop()
        self.select("_v", f"{pfx}_vc_arbs[_p]", "_vs", kind)
        e.line("_q = _qs[_vs.index(_v)]")
        e.pop()
        e.line("bid_vc[_p] = _v")
        e.line("_lst = by_out.get(_q)")
        e.line("if _lst is None:")
        e.push()
        e.line("by_out[_q] = [_p]")
        e.pop()
        e.line("else:")
        e.push()
        e.line("_lst.append(_p)")
        e.pop()
        e.line("_i = _j")
        e.pop()
        e.line("for _q, _ports in by_out.items():")
        e.push()
        e.line("if len(_ports) == 1:")
        e.push()
        e.line("_w = _ports[0]")
        e.pop()
        e.line("else:")
        e.push()
        self.select("_w", f"{pfx}_port_arbs[_q]", "_ports", kind)
        e.pop()
        e.line("_v = bid_vc[_w]")
        store("_w", "_v", "_q")
        if commit:
            self._sw_adv(pfx, kind, "_v", "_w", "_q")
        e.pop()
        e.pop()

    def _sw_sep_of(self, items, pfx, kind, commit, store):
        e = self.e
        e.line("cols = {}")
        e.line("rowsd = {}")
        e.line(f"for _p, _v, _q in {items}:")
        e.push()
        e.line("_row = rowsd.get(_p)")
        e.line("if _row is None:")
        e.push()
        e.line("rowsd[_p] = [(_v, _q)]")
        e.pop()
        e.line("else:")
        e.push()
        e.line("_row.append((_v, _q))")
        e.pop()
        e.line("_col = cols.get(_q)")
        e.line("if _col is None:")
        e.push()
        e.line("cols[_q] = [_p]")
        e.pop()
        e.line("elif _col[-1] != _p:")
        e.push()
        e.line("_col.append(_p)")
        e.pop()
        e.pop()
        e.line("offers = {}")
        e.line("for _q, _ports in cols.items():")
        e.push()
        e.line("if len(_ports) == 1:")
        e.push()
        e.line("offers[_q] = _ports[0]")
        e.pop()
        e.line("else:")
        e.push()
        self.select("_w", f"{pfx}_port_arbs[_q]", "_ports", kind)
        e.line("offers[_q] = _w")
        e.pop()
        e.pop()
        e.line("for _p, _row in rowsd.items():")
        e.push()
        e.line("_vs = [_vv for _vv, _qq in _row if offers.get(_qq) == _p]")
        e.line("if not _vs:")
        e.push()
        e.line("continue")
        e.pop()
        e.line("if len(_vs) == 1:")
        e.push()
        e.line("_v = _vs[0]")
        e.pop()
        e.line("else:")
        e.push()
        self.select("_v", f"{pfx}_vc_arbs[_p]", "_vs", kind)
        e.pop()
        e.line("for _vv, _qq in _row:")
        e.push()
        e.line("if _vv == _v:")
        e.push()
        e.line("_q = _qq")
        e.line("break")
        e.pop()
        e.pop()
        store("_p", "_v", "_q")
        if commit:
            self._sw_adv(pfx, kind, "_v", "_p", "_q")
        e.pop()

    def _sw_wf(self, items, pfx, kind, commit, store):
        # Consumes the scratch arrays the busy scan filled (per-port VC
        # bitmasks + per-VC requested outputs) instead of request-tuple
        # lists; ``items`` is unused.  The scratch is cleared on exit.
        e = self.e
        P, V = self.P, self.V
        vb = "_nsvb" if pfx == "_sa" else "_spvb"
        qa = "_nsq" if pfx == "_sa" else "_spq"
        # Wave-ordered sweep as one flat integer sort: each distinct
        # (input, output) request packs to ``wave << 2b | p << b | q``,
        # so an int sort visits requests by (wave, p, q) -- exactly the
        # stable wave-bucket order of the interpreted allocator.
        qb = max(1, (P - 1).bit_length())
        e.line(f"_start = {pfx}_wf._diagonal")
        e.line("_enc = []")
        e.line("_encap = _enc.append")
        e.line(f"for _p in range({P}):")
        e.push()
        e.line(f"_m = {vb}[_p]")
        e.line("if not _m:")
        e.push()
        e.line("continue")
        e.pop()
        e.line(f"_pb = _p * {V}")
        e.line("_qm = 0")
        e.line("while _m:")
        e.push()
        e.line("_low = _m & -_m")
        e.line("_m -= _low")
        e.line(f"_q = {qa}[_pb + _low.bit_length() - 1]")
        e.line("_b = 1 << _q")
        e.line("if not _qm & _b:")
        e.push()
        e.line("_qm |= _b")
        e.line(
            f"_encap((((_p + _q - _start) % {P}) << {2 * qb})"
            f" | (_p << {qb}) | _q)"
        )
        e.pop()
        e.pop()
        e.pop()
        e.line("_enc.sort()")
        e.line("_ru = 0")
        e.line("_cu = 0")
        e.line("for _k in _enc:")
        e.push()
        e.line(f"_p = (_k >> {qb}) & {(1 << qb) - 1}")
        e.line(f"_q = _k & {(1 << qb) - 1}")
        e.line("if (_ru >> _p) & 1 or (_cu >> _q) & 1:")
        e.push()
        e.line("continue")
        e.pop()
        e.line("_ru |= 1 << _p")
        e.line("_cu |= 1 << _q")
        e.line(f"_m = {vb}[_p]")
        e.line("if _m & (_m - 1):")
        e.push()
        # Multi-VC port: gather the VCs requesting ``_q`` in ascending
        # order (the order the scan appended them in).
        e.line(f"_pb = _p * {V}")
        e.line("_vs = []")
        e.line("while _m:")
        e.push()
        e.line("_low = _m & -_m")
        e.line("_m -= _low")
        e.line("_vv = _low.bit_length() - 1")
        e.line(f"if {qa}[_pb + _vv] == _q:")
        e.push()
        e.line("_vs.append(_vv)")
        e.pop()
        e.pop()
        e.line("if len(_vs) == 1:")
        e.push()
        e.line("_v = _vs[0]")
        e.pop()
        e.line("else:")
        e.push()
        self.select("_v", f"{pfx}_vc_arbs[_p]", "_vs", kind)
        e.pop()
        e.pop()
        e.line("else:")
        e.push()
        e.line("_v = _m.bit_length() - 1")
        e.pop()
        store("_p", "_v", "_q")
        if commit:
            self.advance(f"{pfx}_vc_arbs[_p]", "_v", self.V, kind)
        e.pop()
        e.line(f"{pfx}_wf._diagonal = (_start + 1) % {P}")
        e.line(f"{vb}[:] = _ZP")

    # -- VC-allocator cores -----------------------------------------------
    def va_core(self) -> None:
        arch = self.spec.vc_arch
        if arch == "sep_if":
            self._va_sep_if()
        elif arch == "sep_of":
            self._va_sep_of()
        else:
            self._va_wf()

    def _va_stage1_pick(self, res: str, i: str, cands: str) -> None:
        e = self.e
        e.line(f"if len({cands}) == 1:")
        e.push()
        e.line(f"{res} = {cands}[0]")
        e.pop()
        e.line("else:")
        e.push()
        self.select(res, f"_va_in_arbs[{i}]", cands, self.spec.vc_arbiter)
        e.pop()

    def _va_sep_if(self) -> None:
        e = self.e
        kind = self.spec.vc_arbiter
        V = self.V
        e.line("if len(va_items) == 1:")
        e.push()
        e.line("_t = va_items[0]")
        e.line("_i = _t[0]")
        e.line("_q = _t[1]")
        e.line("_cands = _t[2]")
        self._va_stage1_pick("_c", "_i", "_cands")
        self.advance("_va_in_arbs[_i]", "_c", V, kind)
        e.line(f"_b = _q * {V} + _c")
        self.tree_advance("_b", "_i")
        self.va_commit("_i", "_q", "_c")
        e.pop()
        e.line("else:")
        e.push()
        e.line("vbid = {}")
        e.line("for _i, _q, _cands in va_items:")
        e.push()
        self._va_stage1_pick("_c", "_i", "_cands")
        e.line(f"_b = _q * {V} + _c")
        e.line("_lst = vbid.get(_b)")
        e.line("if _lst is None:")
        e.push()
        e.line("vbid[_b] = [_i]")
        e.pop()
        e.line("else:")
        e.push()
        e.line("_lst.append(_i)")
        e.pop()
        e.pop()
        e.line("for _b, _who in vbid.items():")
        e.push()
        e.line("if len(_who) == 1:")
        e.push()
        e.line("_w = _who[0]")
        e.pop()
        e.line("else:")
        e.push()
        e.line("_w = _va_out_arbs[_b].select_sparse(_who)")
        e.pop()
        e.line(f"_q = {self.divV('_b')}")
        e.line(f"_c = {self.modV('_b')}")
        self.advance("_va_in_arbs[_w]", "_c", V, kind)
        self.tree_advance("_b", "_w")
        self.va_commit("_w", "_q", "_c")
        e.pop()
        e.pop()

    def _va_sep_of(self) -> None:
        e = self.e
        V = self.V
        e.line("vreq = {}")
        e.line("for _i, _q, _cands in va_items:")
        e.push()
        e.line(f"_base = _q * {V}")
        e.line("for _c in _cands:")
        e.push()
        e.line("_o = _base + _c")
        e.line("_lst = vreq.get(_o)")
        e.line("if _lst is None:")
        e.push()
        e.line("vreq[_o] = [_i]")
        e.pop()
        e.line("else:")
        e.push()
        e.line("_lst.append(_i)")
        e.pop()
        e.pop()
        e.pop()
        e.line("voff = {}")
        e.line("for _o, _who in vreq.items():")
        e.push()
        e.line("if len(_who) == 1:")
        e.push()
        e.line("voff[_o] = _who[0]")
        e.pop()
        e.line("else:")
        e.push()
        e.line("voff[_o] = _va_out_arbs[_o].select_sparse(_who)")
        e.pop()
        e.pop()
        e.line("for _i, _q, _cands in va_items:")
        e.push()
        e.line(f"_base = _q * {V}")
        e.line("_off = [_c for _c in _cands if voff.get(_base + _c) == _i]")
        e.line("if not _off:")
        e.push()
        e.line("continue")
        e.pop()
        e.line("if len(_off) == 1:")
        e.push()
        e.line("_c = _off[0]")
        e.pop()
        e.line("else:")
        e.push()
        self.select("_c", "_va_in_arbs[_i]", "_off", self.spec.vc_arbiter)
        e.pop()
        self.advance("_va_in_arbs[_i]", "_c", V, self.spec.vc_arbiter)
        e.line("_o = _base + _c")
        self.tree_advance("_o", "_i")
        self.va_commit("_i", "_q", "_c")
        e.pop()

    def _va_wf(self) -> None:
        e = self.e
        M, V, RC = self.M, self.V, self.RC
        S = self.P * RC
        # Flat integer sort per message-class block, packing each
        # (input row, output column) request as ``wave << 2b | a << b | c``
        # so one int sort reproduces the stable wave-bucket order of the
        # interpreted wavefront (see _sw_wf).
        sb = max(1, (S - 1).bit_length())
        smask = (1 << sb) - 1

        def _sweep(i_expr: str, c_expr: str) -> None:
            e.line("_enc.sort()")
            e.line("_ru = 0")
            e.line("_cu = 0")
            e.line("for _k in _enc:")
            e.push()
            e.line(f"_a = (_k >> {sb}) & {smask}")
            e.line(f"_cc = _k & {smask}")
            e.line("if (_ru >> _a) & 1 or (_cu >> _cc) & 1:")
            e.push()
            e.line("continue")
            e.pop()
            e.line("_ru |= 1 << _a")
            e.line("_cu |= 1 << _cc")
            e.line(f"_i = {i_expr}")
            e.line(f"_c = {c_expr}")
            e.line(f"_q = {self.divRC('_cc')}")
            self.va_commit("_i", "_q", "_c")
            e.pop()

        enc_expr = (
            f"_encap((((_a + _cc - _start) % {S}) << {2 * sb})"
            f" | (_a << {sb}) | _cc)"
        )
        if M == 1:
            e.line("_wfo = _va_wfs[0]")
            e.line("_start = _wfo._diagonal")
            e.line("_enc = []")
            e.line("_encap = _enc.append")
            e.line("for _i, _q, _cands in va_items:")
            e.push()
            e.line(f"_a = {self.divV('_i')} * {RC} + {self.modV('_i')}")
            e.line(f"_cb = _q * {RC}")
            e.line("for _c in _cands:")
            e.push()
            e.line(f"_cc = _cb + {self.modRC('_c')}")
            e.line(enc_expr)
            e.pop()
            e.pop()
            # va_items entries always carry candidates, so the block is
            # non-empty and the diagonal rotates unconditionally.
            _sweep(
                f"{self.divRC('_a')} * {V} + {self.modRC('_a')}",
                self.modRC("_cc"),
            )
            e.line(f"_wfo._diagonal = (_start + 1) % {S}")
        else:
            e.line(f"_encs = [[] for _b in range({M})]")
            e.line("_starts = [_w._diagonal for _w in _va_wfs]")
            e.line("for _i, _q, _cands in va_items:")
            e.push()
            e.line(f"_iv = {self.modV('_i')}")
            e.line(f"_b = {self.divRC('_iv')}")
            e.line(f"_a = {self.divV('_i')} * {RC} + {self.modRC('_iv')}")
            e.line(f"_cb = _q * {RC}")
            e.line("_start = _starts[_b]")
            e.line("_encap = _encs[_b].append")
            e.line("for _c in _cands:")
            e.push()
            e.line(f"_cc = _cb + {self.modRC('_c')}")
            e.line(enc_expr)
            e.pop()
            e.pop()
            e.line(f"for _b in range({M}):")
            e.push()
            e.line("_enc = _encs[_b]")
            e.line("if not _enc:")
            e.push()
            e.line("continue")
            e.pop()
            _sweep(
                f"{self.divRC('_a')} * {V} + _b * {RC} + {self.modRC('_a')}",
                f"_b * {RC} + {self.modRC('_cc')}",
            )
            e.line(f"_va_wfs[_b]._diagonal = (_starts[_b] + 1) % {S}")
            e.pop()

    # -- whole-module rendering -------------------------------------------
    def render(self) -> str:
        spec = self.spec
        e = self.e
        P, V, M, R, C = self.P, self.V, self.M, self.R, self.C
        e.line(f'"""Generated allocation kernel: {spec.slug()}.')
        e.line("")
        e.line("Auto-generated by repro.netsim.codegen -- do not edit.")
        e.line(f"Specialized for P={P}, V={V} (M={M}, R={R}, C={C}),")
        e.line(
            f"VA={spec.vc_arch}/{spec.vc_arbiter}, "
            f"SA={spec.sw_arch}/{spec.sw_arbiter}, "
            f"scheme={spec.scheme}, lookahead={spec.lookahead}."
        )
        if self.profiled:
            e.line("Profiled variant: emits repro.obs.profiling phase hooks.")
        e.line('"""')
        e.line("")
        cands = tuple(
            tuple(range((m * R + r) * C, (m * R + r) * C + C))
            for m in range(M)
            for r in range(R)
        )
        e.line(f"_CANDS = {cands!r}")
        e.line("")
        e.line("")
        e.line("def make_step(router):")
        e.push()
        self._emit_bindings()
        e.line("")
        e.line("def step(network, now):")
        e.push()
        self._emit_step_body()
        e.pop()
        e.line("")
        e.line("return step")
        e.pop()
        return e.source()

    def _emit_bindings(self) -> None:
        e = self.e
        spec = self.spec
        e.line("if (")
        e.push()
        e.line(f"router.num_ports != {self.P}")
        e.line(f"or router.num_vcs != {self.V}")
        e.line(f"or router.vc_alloc.arch != {spec.vc_arch!r}")
        e.line(f"or router.vc_alloc.arbiter_kind != {spec.vc_arbiter!r}")
        e.line("or not router.vc_alloc.sparse")
        e.line(f"or router.sw_alloc.arch != {spec.sw_arch!r}")
        e.line(f"or router.sw_alloc.scheme != {spec.scheme!r}")
        e.line(
            "or router.sw_alloc._nonspec_alloc.arbiter_kind != "
            f"{spec.sw_arbiter!r}"
        )
        e.line(f"or bool(router.lookahead) is not {spec.lookahead!r}")
        e.pop()
        e.line("):")
        e.push()
        e.line('raise ValueError("router does not match compiled kernel spec")')
        e.pop()
        e.line("_router = router")
        e.line("_busy = router._busy")
        e.line("_busy_discard = _busy.discard")
        e.line("_ivc_flat = router._ivc_flat")
        e.line("_credits = router.credits")
        e.line("_holder = router.output_holder")
        # Split the departure link tuples once: event-tuple prefixes and
        # precomputed landing delays (flit lands at now + 2 + latency).
        e.line("_out_pre = [None if _l is None else _l[:3] for _l in router.out_links]")
        e.line("_out_del = [None if _l is None else _l[3] + 2 for _l in router.out_links]")
        e.line("_up_pre = [None if _l is None else _l[:3] for _l in router.upstream]")
        e.line("_up_del = [None if _l is None else _l[3] + 2 for _l in router.upstream]")
        e.line("_port_flits = router.port_flits")
        e.line("_sa = router.sw_alloc._nonspec_alloc")
        e.line("_sa_vc_arbs = _sa._vc_arbs")
        if spec.sw_arch == "wf":
            e.line("_sa_wf = _sa._wavefront")
        else:
            e.line("_sa_port_arbs = _sa._port_arbs")
        if self.spec_on:
            e.line("_sp = router.sw_alloc._spec_alloc")
            e.line("_sp_vc_arbs = _sp._vc_arbs")
            if spec.sw_arch == "wf":
                e.line("_sp_wf = _sp._wavefront")
            else:
                e.line("_sp_port_arbs = _sp._port_arbs")
        e.line("_va = router.vc_alloc")
        if spec.vc_arch == "wf":
            e.line("_va_wfs = _va._wavefronts")
        else:
            e.line("_va_in_arbs = _va._input_arbs")
            e.line("_va_out_arbs = _va._output_arbs")
            if spec.vc_arbiter == "rr":
                e.line("_va_out_groups = [_t._group_arbs for _t in _va_out_arbs]")
                e.line("_va_out_tops = [_t._top_arb for _t in _va_out_arbs]")
        # Persistent scratch for the generic path (allocated once per
        # closure, reset by the code paths that populate them): per-port
        # grant slots, and for wavefront switch cores the per-port VC
        # bitmasks / per-VC output requests the busy scan fills in place
        # of request-tuple lists.
        e.line(f"_nsg = [-1] * {self.P}")
        if self.spec_on:
            e.line(f"_spg = [None] * {self.P}")
        if spec.sw_arch == "wf":
            e.line(f"_ZP = (0,) * {self.P}")
            e.line(f"_nsvb = [0] * {self.P}")
            e.line(f"_nsq = [0] * {self.P * self.V}")
            if self.spec_on:
                e.line(f"_spvb = [0] * {self.P}")
                e.line(f"_spq = [0] * {self.P * self.V}")

    # -- per-cycle step body ----------------------------------------------
    def _emit_step_body(self) -> None:
        e = self.e
        spec = self.spec
        P, V = self.P, self.V
        # De-specialize when instrumentation or fault injection is live:
        # the fast kernel's hook sites are the contract for those runs.
        e.line("if _router.observer is not None or _router.fault_state is not None:")
        e.push()
        e.line("return _router._allocation_step_fast(network, now)")
        e.pop()
        # Variant switch: each render matches exactly one profiler state;
        # a mismatch re-bootstraps into the other cached variant (the
        # bootstrap picks by ``profiler is not None``, so this cannot
        # recurse).
        if self.profiled:
            e.line("_prof = _router.profiler")
            e.line("if _prof is None:")
            e.push()
            e.line("return _router._compiled_bootstrap(network, now)")
            e.pop()
        else:
            e.line("if _router.profiler is not None:")
            e.push()
            e.line("return _router._compiled_bootstrap(network, now)")
            e.pop()
        # Scalar fast path for the dominant cycle shape: exactly one busy
        # VC that already holds an output VC.  No sorting and no request
        # lists -- grant, depart and return with plain locals.  A waiting
        # head (VA needed) falls through to the generic path below.
        e.line("_nb = len(_busy)")
        e.line("if _nb == 1:")
        e.push()
        e.line("for _pv in _busy:")
        e.push()
        e.line("break")
        e.pop()
        e.line("_ivc = _ivc_flat[_pv]")
        e.line("_u = _ivc.output_vc")
        e.line("if _u >= 0:")
        e.push()
        e.line("_q = _ivc.output_port")
        e.line("if _credits[_q][_u] > 0:")
        e.push()
        e.line(f"_p = {self.divV('_pv')}")
        e.line(f"_v = {self.modV('_pv')}")
        self._scalar_ns_grant()
        e.line("_router.switch_grants += _sg")
        e.pop()
        e.line("else:")
        e.push()
        # Zero requests this cycle -- same idle latch as the generic
        # scan's empty case (the lone VC is stalled on credits).
        e.line("_router._alloc_idle = True")
        e.pop()
        e.line("return")
        e.pop()
        self._scalar_single_waiting()
        e.pop()
        # Two busy VCs, both already holding output VCs: the common
        # streaming shape.  Conflicting or mixed shapes fall through to
        # the generic scan below.
        e.line("elif _nb == 2:")
        e.push()
        e.line("_pv = min(_busy)")
        e.line("_pv2 = max(_busy)")
        e.line("_ivc = _ivc_flat[_pv]")
        e.line("_u = _ivc.output_vc")
        e.line("_ivc2 = _ivc_flat[_pv2]")
        e.line("_u2 = _ivc2.output_vc")
        e.line("if _u >= 0 and _u2 >= 0:")
        e.push()
        e.line("_q = _ivc.output_port")
        e.line("_q2 = _ivc2.output_port")
        e.line("if _credits[_q][_u] > 0:")
        e.push()
        e.line("if _credits[_q2][_u2] > 0:")
        e.push()
        e.line(f"_p = {self.divV('_pv')}")
        e.line(f"_p2 = {self.divV('_pv2')}")
        e.line("if _p != _p2 and _q != _q2:")
        e.push()
        # _pv < _pv2 and distinct ports imply _p < _p2: grant/depart
        # order matches the generic uncontested loop.
        e.line(f"_v = {self.modV('_pv')}")
        self._scalar_ns_grant(rotate=False)
        e.line("_p = _p2")
        e.line("_q = _q2")
        e.line(f"_v = {self.modV('_pv2')}")
        self._scalar_ns_grant(bind_events=False, rotate=False)
        if spec.sw_arch == "wf":
            e.line(f"_sa_wf._diagonal = (_sa_wf._diagonal + 1) % {self.P}")
        e.line("_router.switch_grants += _sg")
        e.line("return")
        e.pop()
        e.pop()
        e.line("else:")
        e.push()
        e.line(f"_p = {self.divV('_pv')}")
        e.line(f"_v = {self.modV('_pv')}")
        self._scalar_ns_grant()
        e.line("_router.switch_grants += _sg")
        e.line("return")
        e.pop()
        e.pop()
        e.line("elif _credits[_q2][_u2] > 0:")
        e.push()
        e.line("_q = _q2")
        e.line(f"_p = {self.divV('_pv2')}")
        e.line(f"_v = {self.modV('_pv2')}")
        self._scalar_ns_grant()
        e.line("_router.switch_grants += _sg")
        e.line("return")
        e.pop()
        e.line("else:")
        e.push()
        e.line("_router._alloc_idle = True")
        e.line("return")
        e.pop()
        e.pop()
        # One active + one waiting head: the other common streaming
        # shape (a head arrives behind an in-flight packet).
        e.line("elif _u >= 0:")
        e.push()
        self._scalar_mixed("_pv", "_ivc", "_u", "_pv2", "_ivc2")
        e.pop()
        e.line("elif _u2 >= 0:")
        e.push()
        self._scalar_mixed("_pv2", "_ivc2", "_u2", "_pv", "_ivc")
        e.pop()
        e.pop()
        # Three or more busy VCs, all holding output VCs with credit and
        # pairwise-distinct input and output ports: row- and
        # column-disjoint requests cannot knock each other out in any of
        # the three architectures, so every request is granted -- commit
        # straight off the sorted busy list with no scratch fills and no
        # wave sort.  Ascending _pv order is ascending port order here
        # (ports are distinct), matching the generic uncontested loop's
        # grant, departure and event-append order.  Any waiting head,
        # credit stall or port conflict breaks out to the generic scan.
        e.line("else:")
        e.push()
        e.line("_pvs = sorted(_busy)")
        e.line("_ins = 0")
        e.line("_outs = 0")
        e.line("for _pv in _pvs:")
        e.push()
        e.line("_ivc = _ivc_flat[_pv]")
        e.line("_u = _ivc.output_vc")
        e.line("if _u < 0:")
        e.push()
        e.line("break")
        e.pop()
        e.line("_q = _ivc.output_port")
        e.line("if _credits[_q][_u] <= 0:")
        e.push()
        e.line("break")
        e.pop()
        e.line(f"_b = 1 << {self.divV('_pv')}")
        e.line("if _ins & _b:")
        e.push()
        e.line("break")
        e.pop()
        e.line("_ins |= _b")
        e.line("_b = 1 << _q")
        e.line("if _outs & _b:")
        e.push()
        e.line("break")
        e.pop()
        e.line("_outs |= _b")
        e.pop()
        e.line("else:")
        e.push()
        e.line("_fev = network._flit_events")
        e.line("_cev = network._credit_events")
        e.line("_sg = 0")
        e.line("for _pv in _pvs:")
        e.push()
        e.line(f"_p = {self.divV('_pv')}")
        e.line(f"_v = {self.modV('_pv')}")
        self.advance("_sa_vc_arbs[_p]", "_v", self.V, spec.sw_arbiter)
        if spec.sw_arch != "wf":
            e.line("_q = _ivc_flat[_pv].output_port")
            self.advance("_sa_port_arbs[_q]", "_p", self.P, spec.sw_arbiter)
        self.depart("_p", "_v")
        e.pop()
        if spec.sw_arch == "wf":
            e.line(f"_sa_wf._diagonal = (_sa_wf._diagonal + 1) % {self.P}")
        e.line("_router.switch_grants += _sg")
        e.line("return")
        e.pop()
        e.pop()
        wf = spec.sw_arch == "wf"
        if wf:
            # Wavefront cores consume the scratch arrays directly; the
            # scan fills them in place of request-tuple lists.
            e.line("_nsn = 0")
            if self.spec_on:
                e.line("_spn = 0")
        else:
            e.line("ns_items = []")
            if self.spec_on:
                e.line("sp_items = []")
        e.line("va_items = []")
        e.line("uncontested = True")
        e.line("prev_p = -1")
        e.line("out_seen = 0")
        if self.spec_on and spec.scheme == "pessimistic":
            e.line("ns_in = 0")
        if not spec.lookahead:
            e.line("did_route = False")
        e.line("for _pv in sorted(_busy):")
        e.push()
        e.line("_ivc = _ivc_flat[_pv]")
        e.line("_u = _ivc.output_vc")
        e.line("if _u >= 0:")
        e.push()
        e.line("_q = _ivc.output_port")
        e.line("if _credits[_q][_u] > 0:")
        e.push()
        e.line(f"_p = {self.divV('_pv')}")
        if wf:
            e.line(f"_nsvb[_p] |= 1 << {self.modV('_pv')}")
            e.line("_nsq[_pv] = _q")
            e.line("_nsn += 1")
        else:
            e.line(f"ns_items.append((_p, {self.modV('_pv')}, _q))")
        e.line("if _p == prev_p or (out_seen >> _q) & 1:")
        e.push()
        e.line("uncontested = False")
        e.pop()
        e.line("prev_p = _p")
        e.line("out_seen |= 1 << _q")
        if self.spec_on and spec.scheme == "pessimistic":
            e.line("ns_in |= 1 << _p")
        e.pop()
        e.pop()
        e.line("else:")
        e.push()
        e.line("_front = _ivc.queue[0]")
        e.line("if not _front.is_head:")
        e.push()
        e.line("continue")
        e.pop()
        e.line("_q = _front.out_port")
        if not spec.lookahead:
            e.line("if _q < 0:")
            e.push()
            self.pb()
            e.line("_front.out_port = _router.route_fn(network, _router, _front.packet)")
            self.pe("routing")
            e.line("did_route = True")
            e.line("continue")
            e.pop()
        e.line("_pkt = _front.packet")
        e.line("_h = _holder[_q]")
        if self.M == 1 and self.R == 1:
            cands_src = repr(tuple(range(self.C)))
        elif self.R == 1:
            cands_src = "_CANDS[_pkt.message_class]"
        else:
            cands_src = f"_CANDS[_pkt.message_class * {self.R} + _pkt.resource_class]"
        e.line(f"_cands = [_w for _w in {cands_src} if _h[_w] is None]")
        e.line("if _cands:")
        e.push()
        e.line("va_items.append((_pv, _q, _cands))")
        if self.spec_on:
            if wf:
                e.line(f"_spvb[{self.divV('_pv')}] |= 1 << {self.modV('_pv')}")
                e.line("_spq[_pv] = _q")
                e.line("_spn += 1")
            else:
                e.line(f"sp_items.append(({self.divV('_pv')}, {self.modV('_pv')}, _q))")
        e.line("uncontested = False")
        e.pop()
        e.pop()
        e.pop()
        # Zero-request latch (identical condition to the fast kernel:
        # the speculative set is non-empty exactly when va_items is).
        if wf:
            ns_any = "_nsn"
            sp_any = "_spn"
        else:
            ns_any = "ns_items"
            sp_any = "sp_items"
        waiting = sp_any if self.spec_on else "va_items"
        e.line(f"if not {ns_any} and not {waiting}:")
        e.push()
        if spec.lookahead:
            e.line("_router._alloc_idle = True")
        else:
            e.line("if not did_route:")
            e.push()
            e.line("_router._alloc_idle = True")
            e.pop()
        e.line("return")
        e.pop()
        self._emit_uncontested()
        self._emit_contested()

    def _emit_uncontested(self) -> None:
        e = self.e
        spec = self.spec
        e.line("if uncontested:")
        e.push()
        e.line("_fev = network._flit_events")
        e.line("_cev = network._credit_events")
        e.line("_sg = 0")
        if spec.sw_arch == "wf":
            # Uncontested implies at most one request per input port:
            # each non-zero VC bitmask is a single bit.  Grants run in
            # ascending-port order, matching the scan's item order, and
            # the scratch is cleared as it is consumed.
            e.line(f"for _p in range({self.P}):")
            e.push()
            e.line("_m = _nsvb[_p]")
            e.line("if _m:")
            e.push()
            e.line("_nsvb[_p] = 0")
            e.line("_v = _m.bit_length() - 1")
            e.line(f"_q = _nsq[_p * {self.V} + _v]")
            self.advance("_sa_vc_arbs[_p]", "_v", self.V, spec.sw_arbiter)
            self.depart("_p", "_v")
            e.pop()
            e.pop()
            # grant_uncontested rotates the diagonal once per non-empty
            # cycle; the request set is non-empty here (uncontested
            # implies no VA/spec requests, and the zero-request case
            # returned above).
            e.line(f"_sa_wf._diagonal = (_sa_wf._diagonal + 1) % {self.P}")
        else:
            e.line("for _p, _v, _q in ns_items:")
            e.push()
            self.advance("_sa_vc_arbs[_p]", "_v", self.V, spec.sw_arbiter)
            self.advance("_sa_port_arbs[_q]", "_p", self.P, spec.sw_arbiter)
            self.depart("_p", "_v")
            e.pop()
        e.line("_router.switch_grants += _sg")
        e.line("return")
        e.pop()

    def _emit_contested(self) -> None:
        e = self.e
        spec = self.spec
        P, V = self.P, self.V
        wf = spec.sw_arch == "wf"
        ns_any = "_nsn" if wf else "ns_items"
        sp_any = "_spn" if wf else "sp_items"
        if self.spec_on:
            e.line("granted_now = {}")
        e.line("if va_items:")
        e.push()
        self.pb()
        self.va_core()
        self.pe("vc_alloc")
        e.pop()
        if self.spec_on and spec.scheme == "conventional":
            e.line("_gin = 0")
            e.line("_gout = 0")
        e.line(f"if {ns_any}:")
        e.push()
        self.sw_core("ns_items", "_sa", True, self._store_ns)
        e.pop()
        if self.spec_on:
            e.line("_sw = 0")
            e.line("_miss = 0")
            e.line(f"if {sp_any}:")
            e.push()
            e.line(f"if {ns_any}:")
            e.push()
            self.sw_core("sp_items", "_sp", False, self._store_sp)
            # Masking (update-on-success): discarded grants never advance
            # the speculative core's arbiters; survivors replay exactly
            # the advances SwitchAllocator.commit would apply.
            e.line(f"for _p in range({P}):")
            e.push()
            e.line("_g = _spg[_p]")
            e.line("if _g is None:")
            e.push()
            e.line("continue")
            e.pop()
            if spec.scheme == "pessimistic":
                e.line("if (ns_in >> _p) & 1 or (out_seen >> _g[1]) & 1:")
            else:
                e.line("if (_gin >> _p) & 1 or (_gout >> _g[1]) & 1:")
            e.push()
            e.line("_spg[_p] = None")
            e.line("_miss += 1")
            e.pop()
            e.line("else:")
            e.push()
            e.line("_v = _g[0]")
            if spec.sw_arch != "wf":
                e.line("_q = _g[1]")
            self.advance("_sp_vc_arbs[_p]", "_v", V, spec.sw_arbiter)
            if spec.sw_arch != "wf":
                self.advance("_sp_port_arbs[_q]", "_p", P, spec.sw_arbiter)
            e.pop()
            e.pop()
            e.pop()
            e.line("else:")
            e.push()
            # No non-speculative requests: neither masking scheme can
            # discard, so the speculative core commits inline.
            self.sw_core("sp_items", "_sp", True, self._store_sp)
            e.pop()
            e.pop()
        # Departures, in the fast kernel's order: non-speculative winners
        # ascending by port, then speculative winners ascending by port.
        # The persistent grant scratch is cleared as it is consumed.
        e.line("_fev = network._flit_events")
        e.line("_cev = network._credit_events")
        e.line("_sg = 0")
        e.line(f"if {ns_any}:")
        e.push()
        e.line(f"for _p in range({P}):")
        e.push()
        e.line("_v = _nsg[_p]")
        e.line("if _v >= 0:")
        e.push()
        e.line("_nsg[_p] = -1")
        self.depart("_p", "_v")
        e.pop()
        e.pop()
        e.pop()
        if self.spec_on:
            e.line(f"if {sp_any}:")
            e.push()
            e.line(f"for _p in range({P}):")
            e.push()
            e.line("_g = _spg[_p]")
            e.line("if _g is None:")
            e.push()
            e.line("continue")
            e.pop()
            e.line("_spg[_p] = None")
            e.line("_v = _g[0]")
            e.line(f"_vag = granted_now.get(_p * {V} + _v)")
            e.line(
                "if _vag is not None and _vag[0] == _g[1] "
                "and _credits[_g[1]][_vag[1]] > 0:"
            )
            e.push()
            e.line("_sw += 1")
            self.depart("_p", "_v")
            e.pop()
            e.line("else:")
            e.push()
            e.line("_miss += 1")
            e.pop()
            e.pop()
            e.pop()
        e.line("_router.switch_grants += _sg")
        if self.spec_on:
            e.line("_router.speculative_wins += _sw")
            e.line("_router.misspeculations += _miss")

    def _scalar_ns_grant(self, bind_events: bool = True, rotate: bool = True) -> None:
        """Emit one uncontested switch grant over bound ``_p``/``_v``/``_q``
        locals: SA priority updates plus the inlined departure."""
        e = self.e
        spec = self.spec
        self.advance("_sa_vc_arbs[_p]", "_v", self.V, spec.sw_arbiter)
        if spec.sw_arch != "wf":
            self.advance("_sa_port_arbs[_q]", "_p", self.P, spec.sw_arbiter)
        elif rotate:
            e.line(f"_sa_wf._diagonal = (_sa_wf._diagonal + 1) % {self.P}")
        if bind_events:
            e.line("_fev = network._flit_events")
            e.line("_cev = network._credit_events")
            e.line("_sg = 0")
        self.depart("_p", "_v")

    def _emit_cands(self, front: str) -> None:
        """Emit the free-output-VC candidate scan into ``_cands``."""
        e = self.e
        e.line(f"_pkt = {front}.packet")
        if self.M == 1 and self.R == 1:
            cands_src = repr(tuple(range(self.C)))
        elif self.R == 1:
            cands_src = "_CANDS[_pkt.message_class]"
        else:
            cands_src = f"_CANDS[_pkt.message_class * {self.R} + _pkt.resource_class]"
        e.line(f"_cands = [_w for _w in {cands_src} if _h[_w] is None]")

    def _emit_va_single(self, pv: str, ivc: str, q: str, c: str) -> None:
        """Emit the single-bidder VC allocation for ``(pv, q)`` over the
        bound ``_cands`` list, leaving the granted VC in ``c`` and
        committing the grant (the sole stage-2 bidder wins outright)."""
        e = self.e
        spec = self.spec
        V, RC, P = self.V, self.RC, self.P
        kind = spec.vc_arbiter
        self.pb()
        if spec.vc_arch in ("sep_if", "sep_of"):
            # Identical single-item reductions for both separable duals.
            e.line("if len(_cands) == 1:")
            e.push()
            e.line(f"{c} = _cands[0]")
            e.pop()
            e.line("else:")
            e.push()
            self.select(c, f"_va_in_arbs[{pv}]", "_cands", kind)
            e.pop()
            self.advance(f"_va_in_arbs[{pv}]", c, V, kind)
            e.line(f"_b = {q} * {V} + {c}")
            self.tree_advance("_b", pv)
        else:
            # Wavefront: one input row, winner is the candidate on the
            # earliest wave (distinct columns give distinct waves).
            S = P * RC
            if self.M == 1:
                e.line("_wfo = _va_wfs[0]")
                e.line(f"_a = {self.divV(pv)} * {RC} + {self.modV(pv)}")
            else:
                e.line(f"_iv = {self.modV(pv)}")
                e.line(f"_bb = {self.divRC('_iv')}")
                e.line("_wfo = _va_wfs[_bb]")
                e.line(f"_a = {self.divV(pv)} * {RC} + {self.modRC('_iv')}")
            e.line("_start = _wfo._diagonal")
            e.line(f"_cb = {q} * {RC}")
            e.line(f"_bk = {S}")
            e.line("_bc = -1")
            e.line("for _cx in _cands:")
            e.push()
            e.line(f"_cc = _cb + {self.modRC('_cx')}")
            e.line(f"_k = (_a + _cc - _start) % {S}")
            e.line("if _k < _bk:")
            e.push()
            e.line("_bk = _k")
            e.line("_bc = _cc")
            e.pop()
            e.pop()
            if self.M == 1:
                e.line(f"{c} = {self.modRC('_bc')}")
            else:
                e.line(f"{c} = _bb * {RC} + {self.modRC('_bc')}")
            e.line(f"_wfo._diagonal = (_start + 1) % {S}")
        e.line(f"{ivc}.output_port = {q}")
        e.line(f"{ivc}.output_vc = {c}")
        e.line(f"_h[{c}] = ({self.divV(pv)}, {self.modV(pv)})")
        self.pe("vc_alloc")

    def _scalar_single_waiting(self, pv: str = "_pv", ivc: str = "_ivc") -> None:
        """Emit the lone-waiting-head scalar path (one waiting head, no
        non-speculative requests): VC allocation plus, under speculation,
        the single-request speculative switch pass -- all on plain locals.

        Mirrors the generic contested path for a one-item request set:
        with no non-speculative requests the speculative core commits
        inline and its grant can only miss on downstream credits.
        """
        e = self.e
        spec = self.spec
        V, P = self.V, self.P
        e.line(f"_front = {ivc}.queue[0]")
        e.line("if not _front.is_head:")
        e.push()
        e.line("_router._alloc_idle = True")
        e.line("return")
        e.pop()
        e.line("_q = _front.out_port")
        if not spec.lookahead:
            e.line("if _q < 0:")
            e.push()
            self.pb()
            e.line("_front.out_port = _router.route_fn(network, _router, _front.packet)")
            self.pe("routing")
            e.line("return")
            e.pop()
        e.line("_h = _holder[_q]")
        self._emit_cands("_front")
        e.line("if not _cands:")
        e.push()
        e.line("_router._alloc_idle = True")
        e.line("return")
        e.pop()
        self._emit_va_single(pv, ivc, "_q", "_c")
        if self.spec_on:
            # -- single-request speculative switch pass ---------------
            e.line(f"_p = {self.divV(pv)}")
            e.line(f"_v = {self.modV(pv)}")
            self.advance("_sp_vc_arbs[_p]", "_v", V, spec.sw_arbiter)
            if spec.sw_arch != "wf":
                self.advance("_sp_port_arbs[_q]", "_p", P, spec.sw_arbiter)
            else:
                e.line(f"_sp_wf._diagonal = (_sp_wf._diagonal + 1) % {P}")
            e.line("if _credits[_q][_c] > 0:")
            e.push()
            e.line("_fev = network._flit_events")
            e.line("_cev = network._credit_events")
            e.line("_sg = 0")
            self.depart("_p", "_v")
            e.line("_router.switch_grants += _sg")
            e.line("_router.speculative_wins += 1")
            e.pop()
            e.line("else:")
            e.push()
            e.line("_router.misspeculations += 1")
            e.pop()
        e.line("return")

    def _scalar_mixed(self, apv: str, aivc: str, au: str, wpv: str, wivc: str) -> None:
        """Emit the one-active + one-waiting scalar path (two busy VCs).

        The active VC is the only possible non-speculative request, the
        waiting head the only VC/speculative request.  With a granted
        non-speculative port, the speculative grant survives masking iff
        it collides with neither the active input port nor its output
        (the pessimistic and conventional masks coincide for a single
        granted request).  Every emitted path returns.
        """
        e = self.e
        spec = self.spec
        V, P = self.V, self.P
        e.line(f"_q = {aivc}.output_port")
        e.line(f"if _credits[_q][{au}] > 0:")
        e.push()
        e.line(f"_p = {self.divV(apv)}")
        e.line(f"_v = {self.modV(apv)}")
        e.line(f"_front = {wivc}.queue[0]")
        e.line("if _front.is_head:")
        e.push()
        e.line("_wq = _front.out_port")
        if not spec.lookahead:
            e.line("if _wq < 0:")
            e.push()
            self.pb()
            e.line("_front.out_port = _router.route_fn(network, _router, _front.packet)")
            self.pe("routing")
            self._scalar_ns_grant()
            e.line("_router.switch_grants += _sg")
            e.line("return")
            e.pop()
        e.line("_h = _holder[_wq]")
        self._emit_cands("_front")
        e.line("if _cands:")
        e.push()
        self._emit_va_single(wpv, wivc, "_wq", "_wc")
        # Non-speculative advances for the active grant (the generic
        # path runs the VA core first; the arbiter sets are disjoint).
        self.advance("_sa_vc_arbs[_p]", "_v", V, spec.sw_arbiter)
        if spec.sw_arch != "wf":
            self.advance("_sa_port_arbs[_q]", "_p", P, spec.sw_arbiter)
        else:
            e.line(f"_sa_wf._diagonal = (_sa_wf._diagonal + 1) % {P}")
        e.line("_fev = network._flit_events")
        e.line("_cev = network._credit_events")
        e.line("_sg = 0")
        if self.spec_on:
            e.line(f"_wp = {self.divV(wpv)}")
            e.line(f"_wv = {self.modV(wpv)}")
            if spec.sw_arch == "wf":
                # The staged speculative core rotates its diagonal even
                # when masking later discards the grant.
                e.line(f"_sp_wf._diagonal = (_sp_wf._diagonal + 1) % {P}")
            self.depart("_p", "_v")
            e.line("if _wp != _p and _wq != _q:")
            e.push()
            # Survived masking: replay the commit-time updates.
            self.advance("_sp_vc_arbs[_wp]", "_wv", V, spec.sw_arbiter)
            if spec.sw_arch != "wf":
                self.advance("_sp_port_arbs[_wq]", "_wp", P, spec.sw_arbiter)
            e.line("if _credits[_wq][_wc] > 0:")
            e.push()
            self.depart("_wp", "_wv")
            e.line("_router.switch_grants += _sg")
            e.line("_router.speculative_wins += 1")
            e.pop()
            e.line("else:")
            e.push()
            e.line("_router.switch_grants += _sg")
            e.line("_router.misspeculations += 1")
            e.pop()
            e.pop()
            e.line("else:")
            e.push()
            e.line("_router.switch_grants += _sg")
            e.line("_router.misspeculations += 1")
            e.pop()
        else:
            self.depart("_p", "_v")
            e.line("_router.switch_grants += _sg")
        e.line("return")
        e.pop()
        e.pop()
        # Waiter contributes no request: lone uncontested active grant.
        self._scalar_ns_grant()
        e.line("_router.switch_grants += _sg")
        e.line("return")
        e.pop()
        e.line("else:")
        e.push()
        # Active VC stalled on credits: the waiting head is alone.
        self._scalar_single_waiting(wpv, wivc)
        e.pop()

    def _store_ns(self, p: str, v: str, q: str) -> None:
        e = self.e
        e.line(f"_nsg[{p}] = {v}")
        if self.spec_on and self.spec.scheme == "conventional":
            e.line(f"_gin |= 1 << {p}")
            e.line(f"_gout |= 1 << {q}")

    def _store_sp(self, p: str, v: str, q: str) -> None:
        self.e.line(f"_spg[{p}] = ({v}, {q})")


# ----------------------------------------------------------------------
# factory / cache
# ----------------------------------------------------------------------
_SOURCES: Dict[Tuple[KernelSpec, bool], str] = {}
_FACTORIES: Dict[Tuple[KernelSpec, bool], Callable] = {}


def generate_source(spec: KernelSpec, profiled: bool = False) -> str:
    """Render the generated-kernel module source for ``spec``."""
    return _Gen(spec, profiled).render()


def source_for(spec: KernelSpec, profiled: bool = False) -> str:
    """Cached :func:`generate_source`."""
    key = (spec, profiled)
    src = _SOURCES.get(key)
    if src is None:
        src = generate_source(spec, profiled)
        _SOURCES[key] = src
    return src


def kernel_factory(spec: KernelSpec, profiled: bool = False) -> Callable:
    """Compile (once per spec+variant, process-wide) and return
    ``make_step``."""
    key = (spec, profiled)
    fn = _FACTORIES.get(key)
    if fn is None:
        src = source_for(spec, profiled)
        suffix = "-prof" if profiled else ""
        code = compile(src, f"<compiled-kernel:{spec.slug()}{suffix}>", "exec")
        ns: dict = {}
        exec(code, ns)
        fn = ns["make_step"]
        _FACTORIES[key] = fn
    return fn


def compiled_step_for(router) -> Callable:
    """Build the specialized ``step(network, now)`` bound to ``router``,
    selecting the variant matching its current profiler state."""
    return kernel_factory(
        spec_for_router(router), router.profiler is not None
    )(router)


def iter_template_sources() -> Iterator[Tuple[str, str]]:
    """Yield ``(slug, source)`` for the representative template specs,
    covering both the plain and the profiled render of each."""
    for spec in template_specs():
        yield spec.slug(), source_for(spec)
        yield spec.slug() + "-prof", source_for(spec, True)
