"""Network terminals and the request-reply traffic model (Section 3.2).

Each terminal injects *request* packets according to a geometric
process with configurable arrival rate.  When a request's tail flit is
ejected at its destination, the destination terminal generates the
corresponding reply in the next cycle; replies take priority over the
injection of new requests.  Read requests and write replies are one
flit; write requests and read replies are five.

The terminal also acts as the upstream end of the injection channel:
it tracks per-VC credits for the router's injection-port buffers,
assigns each outgoing packet an injection VC of the appropriate message
class, and is an infinite sink on the ejection side (credits are
returned as soon as flits arrive).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, List, Optional

import numpy as np

from .flit import Flit, Packet, PacketType

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.observer import SimObserver
    from .network import Network
    from .router import Router

__all__ = ["Terminal", "uniform_random_dest", "permutation_dest"]


def uniform_random_dest(rng: np.random.Generator, src: int, num_terminals: int) -> int:
    """Uniform random traffic: any destination but self."""
    dest = int(rng.integers(num_terminals - 1))
    return dest if dest < src else dest + 1


def permutation_dest(permutation: List[int]) -> Callable:
    """Fixed-permutation traffic pattern (e.g. transpose, bit-reverse)."""

    def pick(rng: np.random.Generator, src: int, num_terminals: int) -> int:
        return permutation[src]

    return pick


class Terminal:
    """One network terminal (source + sink)."""

    def __init__(
        self,
        terminal_id: int,
        router: "Router",
        router_port: int,
        link_latency: int,
        packet_rate: float,
        rng: np.random.Generator,
        read_fraction: float = 0.5,
        dest_fn: Callable = uniform_random_dest,
        num_terminals: int = 64,
    ) -> None:
        self.id = terminal_id
        self.router = router
        self.router_port = router_port
        self.link_latency = link_latency
        self.packet_rate = packet_rate
        self.read_fraction = read_fraction
        self.rng = rng
        # Bound method for the per-cycle geometric draw (saves two
        # attribute loads per terminal per cycle on the hot path).
        self._rand = rng.random
        self.dest_fn = dest_fn
        self.num_terminals = num_terminals

        V = router.num_vcs
        self.credits = [router.buffer_depth] * V
        self.request_queue: Deque[Packet] = deque()
        self.reply_queue: Deque[Packet] = deque()
        # Packet currently being serialized onto the injection channel.
        self._flits: List[Flit] = []
        self._vc = -1

        # Statistics.
        self.injected_flits = 0
        self.ejected_flits = 0
        self.generated_packets = 0
        self.unroutable_packets = 0

        # Optional repro.obs instrumentation (None = zero overhead).
        self.observer: Optional["SimObserver"] = None
        # Optional fault-aware routing predicate wired in by
        # ``Network.attach_fault_state``: ``routable_fn(src, dest)`` is
        # False when permanent faults have partitioned the pair, in
        # which case the offered packet is dropped (and counted) at
        # injection instead of stranding in the fabric.  None is the
        # fault-free fast path.
        self.routable_fn: Optional[Callable[[int, int], bool]] = None

    # ------------------------------------------------------------------
    def receive_credit(self, vc: int) -> None:
        self.credits[vc] += 1

    def receive_flit(self, network: "Network", vc: int, flit: Flit, now: int) -> None:
        """Ejection: sink the flit, return the credit, spawn replies.

        ``vc`` is the VC the flit occupied at the router's ejection port
        (whose credit is returned).
        """
        self.ejected_flits += 1
        # Infinite sink: the buffer slot is freed immediately; the credit
        # travels back to the router's ejection port.
        network.schedule_credit(
            now + 1 + self.link_latency, "router", self.router, self.router_port, vc
        )
        if flit.is_tail:
            pkt = flit.packet
            pkt.arrival_time = now
            network.record_delivery(pkt, now)
            if self.observer is not None:
                self.observer.packet_ejected(self.id, pkt, now)
            if pkt.ptype.is_request:
                network.record_birth(now + 1)
                if self.routable_fn is not None and not self.routable_fn(
                    self.id, pkt.src
                ):
                    # The reverse direction is partitioned: the reply
                    # can never be delivered, so drop it at the source.
                    self.unroutable_packets += 1
                else:
                    reply = Packet(
                        src=self.id,
                        dest=pkt.src,
                        ptype=pkt.ptype.reply_type,
                        birth_time=now + 1,
                    )
                    self.reply_queue.append(reply)

    # ------------------------------------------------------------------
    def step(self, network: "Network", now: int) -> None:
        # 1. Generate new request traffic (geometric process).
        if self.packet_rate > 0 and self._rand() < self.packet_rate:
            ptype = (
                PacketType.READ_REQUEST
                if self._rand() < self.read_fraction
                else PacketType.WRITE_REQUEST
            )
            dest = self.dest_fn(self.rng, self.id, self.num_terminals)
            network.record_birth(now)
            if self.routable_fn is not None and not self.routable_fn(
                self.id, dest
            ):
                # Partitioned pair: drop the offered packet at injection.
                # The check runs *after* every RNG draw so the draw
                # stream (and therefore all later traffic) matches what
                # a non-dropping run would generate.
                self.unroutable_packets += 1
            else:
                self.request_queue.append(
                    Packet(src=self.id, dest=dest, ptype=ptype, birth_time=now)
                )
                self.generated_packets += 1

        # 2. Start a new packet if idle (replies take priority).  The
        # queue check is hoisted: _next_packet on two empty queues is a
        # no-op, and most terminal-cycles are idle.
        if not self._flits and (self.reply_queue or self.request_queue):
            pkt = self._next_packet(network, now)
            if pkt is not None:
                vc = self._choose_vc(network, pkt)
                if vc is None:
                    # No credits/VC available: put it back at the front.
                    if pkt.ptype.is_request:
                        self.request_queue.appendleft(pkt)
                    else:
                        self.reply_queue.appendleft(pkt)
                else:
                    self._flits = pkt.make_flits()
                    self._vc = vc

        # 3. Serialize one flit per cycle onto the injection channel.
        if self._flits and self.credits[self._vc] > 0:
            flit = self._flits.pop(0)
            if flit.is_head:
                flit.packet.inject_time = now
                if self.observer is not None:
                    self.observer.packet_injected(self.id, flit.packet, now)
            self.credits[self._vc] -= 1
            self.injected_flits += 1
            network.schedule_flit(
                now + 1 + self.link_latency,
                "router",
                self.router,
                self.router_port,
                self._vc,
                flit,
            )
            if flit.is_tail:
                self._flits = []
                self._vc = -1

    # ------------------------------------------------------------------
    def _next_packet(self, network: "Network", now: int) -> Optional[Packet]:
        pkt: Optional[Packet] = None
        if self.reply_queue and self.reply_queue[0].birth_time <= now:
            pkt = self.reply_queue.popleft()
        elif self.request_queue and self.request_queue[0].birth_time <= now:
            pkt = self.request_queue.popleft()
        if pkt is not None:
            # Route-selection decisions are fixed at injection (UGAL
            # picks minimal vs. Valiant and the intermediate router here).
            network.routing.prepare(network, self, pkt)
        return pkt

    def _choose_vc(self, network: "Network", pkt: Packet) -> Optional[int]:
        """Pick an injection VC of the packet's (message, resource) class.

        Chooses the candidate with the most credits; requires space for
        at least one flit.  Avoids interleaving packets because flits of
        one packet are sent back-to-back before the next is started.
        """
        part = self.router.partition
        best = None
        best_credits = 0
        for u in part.class_vcs_tuple(pkt.message_class, pkt.resource_class):
            if self.credits[u] > best_credits:
                best = u
                best_credits = self.credits[u]
        return best

    @property
    def backlog(self) -> int:
        """Packets waiting at the source (saturation indicator)."""
        return len(self.request_queue) + len(self.reply_queue)
