"""Latency statistics helpers for simulation results.

Beyond the mean the paper plots, downstream users need distribution
shape (tail latency) and a confidence measure.  :class:`LatencySummary`
computes order statistics, and :func:`batch_means` implements the
standard steady-state simulation technique: split the measurement
window into batches, average within each, and estimate the standard
error from the batch means (valid when batches are long relative to the
autocorrelation time).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..obs.metrics import emit_warning

__all__ = ["LatencySummary", "batch_means", "summarize_latencies"]


@dataclass(frozen=True)
class LatencySummary:
    """Order statistics of a latency sample."""

    count: int
    mean: float
    std: float
    minimum: float
    p50: float
    p95: float
    p99: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.1f} p50={self.p50:.1f} "
            f"p95={self.p95:.1f} p99={self.p99:.1f} max={self.maximum:.0f}"
        )


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile on pre-sorted data."""
    n = len(sorted_values)
    if n == 1:
        return float(sorted_values[0])
    pos = q * (n - 1)
    lo = int(pos)
    hi = min(lo + 1, n - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


def summarize_latencies(latencies: Sequence[float]) -> LatencySummary:
    """Full summary of a latency sample; raises on empty input."""
    if not latencies:
        raise ValueError("cannot summarize an empty latency sample")
    data = sorted(float(x) for x in latencies)
    n = len(data)
    mean = sum(data) / n
    var = sum((x - mean) ** 2 for x in data) / n if n > 1 else 0.0
    return LatencySummary(
        count=n,
        mean=mean,
        std=math.sqrt(var),
        minimum=data[0],
        p50=_percentile(data, 0.50),
        p95=_percentile(data, 0.95),
        p99=_percentile(data, 0.99),
        maximum=data[-1],
    )


def batch_means(
    samples: Sequence[Tuple[float, float]],
    num_batches: int = 10,
) -> Tuple[float, float]:
    """Batch-means estimate of (mean, standard error of the mean).

    ``samples`` are ``(timestamp, value)`` pairs; the time axis is split
    into ``num_batches`` equal windows and the grand mean / standard
    error are computed over the per-batch means.

    Contract: the mean is always well defined (``samples`` must be
    non-empty), but the standard error needs at least two *populated*
    batches -- when every sample lands in a single time window (e.g. a
    burst of deliveries in one short measurement interval), the
    between-batch variance does not exist.  In that case this function
    returns ``(mean, nan)`` **and** emits the structured warning
    ``batch_means_underfilled`` through :mod:`repro.obs.metrics`
    (carrying ``num_batches``, ``populated_batches`` and the sample
    count), rather than silently handing back an unusable error bar.
    Callers that persist or print the stderr should treat ``nan`` as
    "confidence unknown", not as zero.
    """
    if not samples:
        raise ValueError("cannot estimate from an empty sample")
    if num_batches < 2:
        raise ValueError("need at least 2 batches")
    t0 = min(t for t, _ in samples)
    t1 = max(t for t, _ in samples)
    span = max(t1 - t0, 1e-9)
    sums = [0.0] * num_batches
    counts = [0] * num_batches
    for t, v in samples:
        b = min(int((t - t0) / span * num_batches), num_batches - 1)
        sums[b] += v
        counts[b] += 1
    means: List[float] = [s / c for s, c in zip(sums, counts) if c > 0]
    k = len(means)
    grand = sum(means) / k
    if k < 2:
        emit_warning(
            "batch_means_underfilled",
            "batch-means stderr undefined: fewer than two batches "
            "contain data; returning stderr=nan",
            num_batches=num_batches,
            populated_batches=k,
            samples=len(samples),
        )
        return grand, float("nan")
    var = sum((m - grand) ** 2 for m in means) / (k - 1)
    return grand, math.sqrt(var / k)
