"""Simulation driver: warm-up/measurement phases and statistics.

Measures average packet latency (packet creation to tail ejection) as a
function of offered load, following the open-loop methodology of
Section 3.2: terminals keep generating according to the configured rate
regardless of network state, latency is averaged over packets *born*
during the measurement window, and the run is flagged saturated when
source backlogs grow without bound or latency exceeds a cap.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from ..faults.plan import FaultPlan
from ..faults.watchdog import Watchdog, WatchdogError
from .flit import Packet

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.observer import SimObserver
from .network import Network
from .stats import LatencySummary, batch_means, summarize_latencies
from .topology import build_fbfly, build_mesh, build_torus

__all__ = [
    "SimulationConfig",
    "SimulationResult",
    "run_simulation",
    "run_simulation_worker",
    "build_network",
    "topology_num_terminals",
    "SIMULATOR_REV",
]

# Revision salt for on-disk result caches (see ``repro.eval.runner``).
# Bump whenever a change alters the *numbers* a simulation produces for
# an unchanged SimulationConfig (pipeline timing, RNG draw order,
# saturation heuristics, ...), so stale cached sweeps are invalidated.
# rev 2: speculative switch allocation no longer advances arbiter
# priority state for masked (discarded) speculative grants, and the
# wavefront priority diagonal holds on request-free cycles -- both
# change allocation outcomes under contention.
# rev 3: fault-present runs changed -- the watchdog defers stall
# verdicts that overlap transient link-fault windows, permanent-fault
# watchdog trips complete in degraded mode instead of aborting, and
# fault-aware routing drops unroutable offered packets at injection
# (shifting the packet-id stream).  Fault-free runs are bit-identical
# to rev 2.
SIMULATOR_REV = 3

# Average flits per transaction (request + its reply): read = 1 + 5,
# write = 5 + 1, so 6 either way; each transaction injects at two
# terminals, hence offered flit load per terminal = 6 * packet_rate for
# a 50/50 read/write mix under uniform traffic.
FLITS_PER_TRANSACTION = 6.0


@dataclass
class SimulationConfig:
    """One network-simulation design point."""

    topology: str = "mesh"  # "mesh" | "fbfly" | "torus"
    vcs_per_class: int = 1  # C; V = M*R*C
    injection_rate: float = 0.1  # offered load, flits/cycle/terminal
    vc_alloc_arch: str = "sep_if"
    vc_alloc_arbiter: str = "rr"
    sw_alloc_arch: str = "sep_if"
    sw_alloc_arbiter: str = "rr"
    speculation: str = "pessimistic"
    buffer_depth: int = 8
    seed: int = 1
    warmup_cycles: int = 1000
    measure_cycles: int = 4000
    drain_cycles: int = 4000
    latency_cap: float = 400.0
    read_fraction: float = 0.5
    # "uniform", "transpose", "bit_complement", "bit_reverse",
    # "shuffle", "neighbor" or "hotspot" (see repro.netsim.patterns).
    traffic_pattern: str = "uniform"
    # Lookahead routing (paper default).  False adds a routing pipeline
    # stage for head flits (ablation baseline).
    lookahead: bool = True
    # Routing mode.  "default" is the paper's routing (DOR on mesh,
    # UGAL on fbfly); "ft_dor" (mesh) / "ft_ugal" (fbfly) are the
    # fault-aware modes that detour around permanent link faults (see
    # repro.netsim.routing.ft).  Omitted from the serialized form at
    # the default, so pre-existing cache keys are unchanged.
    routing: str = "default"
    # Fault injection (repro.faults); None is the fault-free fast path
    # and serializes exactly as pre-fault configs did, so existing
    # caches and goldens stay valid.
    faults: Optional[FaultPlan] = None
    # Livelock/deadlock watchdog: abort with a diagnostic snapshot when
    # no flit moves for this many cycles while work is pending.  0
    # disables the watchdog (and is omitted from the serialized form).
    watchdog_cycles: int = 0
    # Hotspot placement for ``traffic_pattern="hotspot"``: the terminal
    # indices that attract the hot traffic fraction.  None keeps the
    # historical ``[0, N // 2]`` placement and is omitted from the
    # serialized form, so pre-existing cache keys are unchanged.
    hotspot_terminals: Optional[List[int]] = None

    @property
    def packet_rate(self) -> float:
        """Request-packet arrival rate per terminal."""
        return self.injection_rate / FLITS_PER_TRANSACTION

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON- and pickle-friendly).

        The fault fields are *omitted* at their disabled defaults so the
        serialized form -- and therefore every cache key derived from it
        -- is byte-identical to what pre-fault builds produced.
        """
        out = asdict(self)
        if self.faults is None:
            del out["faults"]
        else:
            out["faults"] = self.faults.to_dict()
        if self.watchdog_cycles == 0:
            del out["watchdog_cycles"]
        if self.routing == "default":
            del out["routing"]
        if self.hotspot_terminals is None:
            del out["hotspot_terminals"]
        else:
            out["hotspot_terminals"] = list(self.hotspot_terminals)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SimulationConfig":
        """Rebuild from :meth:`to_dict` output.

        Unknown keys are ignored so caches written by newer code (with
        extra config fields) can still be read where that is safe.
        """
        known = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in known}
        faults = kwargs.get("faults")
        if faults is not None and not isinstance(faults, FaultPlan):
            kwargs["faults"] = FaultPlan.from_dict(faults)
        return cls(**kwargs)


@dataclass
class SimulationResult:
    """Aggregated statistics from one run."""

    config: SimulationConfig
    avg_latency: float
    measured_packets: int
    delivered_packets: int
    injected_flit_rate: float  # measured flits/cycle/terminal
    accepted_flit_rate: float  # ejected flits/cycle/terminal
    saturated: bool
    misspeculations: int = 0
    speculative_wins: int = 0
    latency_by_class: Dict[int, float] = field(default_factory=dict)
    latency_summary: Optional[LatencySummary] = None
    latency_stderr: float = float("nan")
    # Fault-injection outcomes.  Computed only when the config carries a
    # non-empty FaultPlan; fault-free runs report the defaults, so cache
    # entries written before these fields existed deserialize to the
    # same values a fresh fault-free run produces.
    degraded_throughput: float = 1.0  # accepted/injected flit-rate ratio
    packets_lost: int = 0  # packets stranded in the fabric after drain
    fault_counters: Dict[str, int] = field(default_factory=dict)
    # Fraction of packets *offered* during the measurement window
    # (including injection-side unroutable drops) that were delivered
    # by the end of the drain.
    delivered_fraction: float = 1.0
    # True when a permanent-link-fault watchdog trip ended the run
    # early: statistics cover the cycles completed, and the network is
    # known to be wedged (e.g. partitioned without fault-aware routing).
    degraded_mode: bool = False

    def __str__(self) -> str:
        state = " (saturated)" if self.saturated else ""
        return (
            f"rate={self.config.injection_rate:.3f} -> "
            f"latency={self.avg_latency:.1f} cycles over "
            f"{self.measured_packets} packets{state}"
        )

    def to_dict(self) -> dict:
        """JSON-friendly summary (for logging sweeps to disk)."""
        out = {
            "topology": self.config.topology,
            "vcs_per_class": self.config.vcs_per_class,
            "injection_rate": self.config.injection_rate,
            "sw_alloc_arch": self.config.sw_alloc_arch,
            "vc_alloc_arch": self.config.vc_alloc_arch,
            "speculation": self.config.speculation,
            "seed": self.config.seed,
            "avg_latency": self.avg_latency,
            "latency_stderr": self.latency_stderr,
            "measured_packets": self.measured_packets,
            "injected_flit_rate": self.injected_flit_rate,
            "accepted_flit_rate": self.accepted_flit_rate,
            "saturated": self.saturated,
            "misspeculations": self.misspeculations,
            "speculative_wins": self.speculative_wins,
        }
        if self.latency_summary is not None:
            out["p50"] = self.latency_summary.p50
            out["p95"] = self.latency_summary.p95
            out["p99"] = self.latency_summary.p99
        if self.fault_counters:
            # Present only for fault-injected runs, so fault-free sweep
            # logs keep their exact pre-fault shape.
            out["degraded_throughput"] = self.degraded_throughput
            out["packets_lost"] = self.packets_lost
            out["delivered_fraction"] = self.delivered_fraction
            out["degraded_mode"] = self.degraded_mode
            out["fault_counters"] = dict(self.fault_counters)
        return out

    def to_payload(self) -> Dict[str, Any]:
        """Lossless plain-dict form for caches and worker transport.

        Unlike :meth:`to_dict` (a flat logging summary), this preserves
        every field, including the nested config and latency summary.
        ``latency_by_class`` keys are stringified (JSON object keys must
        be strings); :meth:`from_payload` restores them to ``int``.
        """
        out = asdict(self)
        out["config"] = self.config.to_dict()
        out["latency_by_class"] = {
            str(k): v for k, v in self.latency_by_class.items()
        }
        if self.latency_summary is not None:
            out["latency_summary"] = asdict(self.latency_summary)
        return out

    @classmethod
    def from_payload(cls, data: Dict[str, Any]) -> "SimulationResult":
        """Rebuild a full result from :meth:`to_payload` output."""
        data = dict(data)
        data["config"] = SimulationConfig.from_dict(data["config"])
        data["latency_by_class"] = {
            int(k): v for k, v in data.get("latency_by_class", {}).items()
        }
        summary = data.get("latency_summary")
        if summary is not None and not isinstance(summary, LatencySummary):
            data["latency_summary"] = LatencySummary(**summary)
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


# Geometry of the paper's topology instantiations (Section 3 / 5).
# build_network hands these same constants to the builders, and
# topology_num_terminals derives the terminal count from them, so
# traffic patterns (which permute terminal indices) can never assume a
# stale network size.
_MESH_K = 8  # 8x8 mesh, one terminal per router
_TORUS_K = 8  # 8x8 torus, one terminal per router
_FBFLY_ROWS, _FBFLY_COLS, _FBFLY_CONC = 4, 4, 4  # c=4 concentration


def topology_num_terminals(topology: str) -> int:
    """Terminal count of the named paper topology."""
    if topology == "mesh":
        return _MESH_K * _MESH_K
    if topology == "fbfly":
        return _FBFLY_ROWS * _FBFLY_COLS * _FBFLY_CONC
    if topology == "torus":
        return _TORUS_K * _TORUS_K
    raise ValueError(f"unknown topology {topology!r}")


def _resolve_pattern(
    name: str,
    num_terminals: int,
    hotspots: Optional[List[int]] = None,
):
    from . import patterns

    if name == "uniform":
        return None  # topology builders default to uniform random
    makers = {
        "transpose": patterns.transpose_pattern,
        "bit_complement": patterns.bit_complement_pattern,
        "bit_reverse": patterns.bit_reverse_pattern,
        "shuffle": patterns.shuffle_pattern,
        "neighbor": patterns.neighbor_pattern,
    }
    if name == "hotspot":
        if hotspots is None:
            hotspots = [0, num_terminals // 2]
        bad = [t for t in hotspots if not 0 <= t < num_terminals]
        if bad:
            raise ValueError(
                f"hotspot terminal(s) {bad} out of range for a "
                f"{num_terminals}-terminal network"
            )
        return patterns.hotspot_pattern(list(hotspots))
    try:
        return makers[name](num_terminals)
    except KeyError:
        raise ValueError(f"unknown traffic pattern {name!r}") from None


def build_network(cfg: SimulationConfig, kernel: str = "fast") -> Network:
    """Instantiate the configured topology with traffic attached.

    ``kernel`` selects the routers' allocation implementation:
    ``"fast"`` (sparse, the default) or ``"reference"`` (the dense
    oracle).  The two are bit-identical by contract -- see
    ``tests/perf/test_kernel_equivalence.py`` -- so the choice never
    affects results, only wall-clock speed, and deliberately does NOT
    enter the simulation config (or its cache key).
    """
    kwargs = dict(
        dest_fn=_resolve_pattern(
            cfg.traffic_pattern,
            topology_num_terminals(cfg.topology),
            cfg.hotspot_terminals,
        ),
        vcs_per_class=cfg.vcs_per_class,
        packet_rate=cfg.packet_rate,
        seed=cfg.seed,
        vc_alloc_arch=cfg.vc_alloc_arch,
        vc_alloc_arbiter=cfg.vc_alloc_arbiter,
        sw_alloc_arch=cfg.sw_alloc_arch,
        sw_alloc_arbiter=cfg.sw_alloc_arbiter,
        speculation=cfg.speculation,
        buffer_depth=cfg.buffer_depth,
        read_fraction=cfg.read_fraction,
        lookahead=cfg.lookahead,
    )
    if cfg.topology == "mesh":
        net = build_mesh(_MESH_K, routing=cfg.routing, **kwargs)
    elif cfg.topology == "fbfly":
        net = build_fbfly(
            _FBFLY_ROWS, _FBFLY_COLS, _FBFLY_CONC,
            routing=cfg.routing, **kwargs,
        )
    elif cfg.topology == "torus":
        if cfg.routing != "default":
            raise ValueError(
                f"routing mode {cfg.routing!r} is not supported on the "
                "torus (fault-aware routing covers mesh and fbfly)"
            )
        net = build_torus(_TORUS_K, **kwargs)
    else:
        raise ValueError(f"unknown topology {cfg.topology!r}")
    net.set_kernel(kernel)
    return net


def run_simulation_worker(cfg_dict: Dict[str, Any]) -> Dict[str, Any]:
    """Process-pool entry point: dict in, dict out.

    Trading plain dicts instead of live objects keeps the pickled
    payload small and decouples the wire format from class identity, so
    parent and worker interpreters never disagree about dataclass
    layout.  Determinism note: each simulation seeds its RNGs purely
    from ``(cfg.seed, terminal_id)``, so a point computed in a worker
    process is bit-identical to the same point computed serially.
    """
    return run_simulation(SimulationConfig.from_dict(cfg_dict)).to_payload()


def run_simulation(
    cfg: SimulationConfig,
    observer: Optional["SimObserver"] = None,
    kernel: str = "fast",
    profiler=None,
) -> SimulationResult:
    """Warm up, measure, drain; return latency/throughput statistics.

    ``observer`` opts the run into the :mod:`repro.obs` instrumentation
    layer (per-router metrics, flit traces).  The observer never feeds
    back into simulation state or RNG draws, so an instrumented run
    returns bit-identical statistics to an uninstrumented one.  The
    parallel sweep path (:func:`run_simulation_worker`) is always
    uninstrumented; instrumented sweeps run inline.

    ``kernel`` selects the allocation implementation (``"fast"`` /
    ``"reference"``); results are bit-identical either way (see
    :func:`build_network`).

    ``profiler`` opts the run into phase-attribution timing
    (:class:`repro.obs.profiling.PhaseProfiler`).  Like the observer it
    never feeds back into simulation state, so profiled runs return
    bit-identical results; ``None`` is the zero-overhead fast path.
    """
    if profiler is not None:
        _pt = profiler.begin()
    net = build_network(cfg, kernel=kernel)
    if observer is not None:
        observer.run_started(cfg)
        net.attach_observer(observer)

    fault_state = None
    if cfg.faults is not None and not cfg.faults.is_empty:
        horizon = cfg.warmup_cycles + cfg.measure_cycles + cfg.drain_cycles
        fault_state = cfg.faults.materialize(
            [r.num_ports for r in net.routers],
            net.routers[0].num_vcs,
            horizon,
        )
        net.attach_fault_state(fault_state)
    if profiler is not None:
        net.attach_profiler(profiler)
        profiler.direct("setup", _pt)

    measured: List[Packet] = []
    window_start = cfg.warmup_cycles
    window_end = cfg.warmup_cycles + cfg.measure_cycles

    def on_delivery(pkt: Packet, now: int) -> None:
        if window_start <= pkt.birth_time < window_end:
            measured.append(pkt)

    net.on_delivery = on_delivery

    born_in_window = 0
    if fault_state is not None:
        # Fault runs additionally count every packet *offered* during
        # the measurement window (including injection-side unroutable
        # drops) so the delivered fraction has an exact denominator.
        def on_birth(birth_time: int) -> None:
            nonlocal born_in_window
            if window_start <= birth_time < window_end:
                born_in_window += 1

        net.on_birth = on_birth

    if cfg.watchdog_cycles > 0:
        watchdog = Watchdog(net, cfg.watchdog_cycles)

        def run_cycles(n: int) -> None:
            for _ in range(n):
                net.step()
                watchdog.poll(net)

    else:
        run_cycles = net.run  # fault-free fast path: unchanged loop

    degraded_mode = False

    def run_phase(n: int) -> None:
        """One simulation phase; a permanent-link-fault watchdog trip
        ends the run in degraded mode instead of propagating.

        A genuinely wedged fabric *without* permanent link faults is a
        simulator bug (livelock/deadlock), so that WatchdogError still
        raises; with permanent faults, a wedge is an expected property
        of the degraded network (e.g. a partition under non-fault-aware
        routing) and the run completes with the statistics gathered so
        far and ``degraded_mode=True``.
        """
        nonlocal degraded_mode
        if degraded_mode:
            return
        try:
            run_cycles(n)
        except WatchdogError:
            if fault_state is None or not fault_state.has_permanent_link_faults:
                raise
            fault_state.counters["watchdog_degraded_trips"] += 1
            degraded_mode = True

    run_phase(cfg.warmup_cycles)
    inj0 = net.total_injected_flits()
    ej0 = net.total_ejected_flits()
    backlog0 = net.total_backlog()
    run_phase(cfg.measure_cycles)
    inj1 = net.total_injected_flits()
    ej1 = net.total_ejected_flits()
    backlog1 = net.total_backlog()
    run_phase(cfg.drain_cycles)
    if observer is not None:
        observer.run_finished(net, cfg)
    if profiler is not None:
        _pt = profiler.begin()

    n_terms = net.num_terminals
    # A zero-length measurement window (legal, e.g. warmup-only probe
    # runs) has no rate denominator; report zero rather than dividing.
    meas_flit_slots = cfg.measure_cycles * n_terms
    injected_rate = (inj1 - inj0) / meas_flit_slots if meas_flit_slots else 0.0
    accepted_rate = (ej1 - ej0) / meas_flit_slots if meas_flit_slots else 0.0

    if measured:
        latencies = [p.arrival_time - p.birth_time for p in measured]
        summary = summarize_latencies(latencies)
        avg_latency = summary.mean
        _, stderr = batch_means(
            [(p.birth_time, p.arrival_time - p.birth_time) for p in measured]
        )
        by_class: Dict[int, List[int]] = {}
        for p in measured:
            by_class.setdefault(p.message_class, []).append(
                p.arrival_time - p.birth_time
            )
        latency_by_class = {
            m: sum(v) / len(v) for m, v in by_class.items()
        }
    else:
        avg_latency = float("inf")
        latency_by_class = {}
        summary = None
        stderr = float("nan")

    # Saturation: unbounded backlog growth or capped/unmeasurable latency.
    backlog_growth = (backlog1 - backlog0) / n_terms
    expected_measured = cfg.packet_rate * cfg.measure_cycles * n_terms * 2
    saturated = (
        avg_latency > cfg.latency_cap
        or backlog_growth > 4.0
        or (expected_measured > 0 and len(measured) < 0.75 * expected_measured)
    )

    if fault_state is not None:
        degraded_throughput = (
            accepted_rate / injected_rate if injected_rate > 0 else 1.0
        )
        packets_lost = net.stranded_packets()
        fault_state.counters["packets_unroutable"] = sum(
            t.unroutable_packets for t in net.terminals
        )
        delivered_fraction = (
            len(measured) / born_in_window if born_in_window else 1.0
        )
        fault_counters = fault_state.summary()
    else:
        degraded_throughput = 1.0
        packets_lost = 0
        delivered_fraction = 1.0
        fault_counters = {}

    result = SimulationResult(
        config=cfg,
        avg_latency=avg_latency,
        measured_packets=len(measured),
        delivered_packets=len(measured),
        injected_flit_rate=injected_rate,
        accepted_flit_rate=accepted_rate,
        saturated=saturated,
        misspeculations=net.total_misspeculations(),
        speculative_wins=net.total_speculative_wins(),
        latency_by_class=latency_by_class,
        latency_summary=summary,
        latency_stderr=stderr,
        degraded_throughput=degraded_throughput,
        packets_lost=packets_lost,
        fault_counters=fault_counters,
        delivered_fraction=delivered_fraction,
        degraded_mode=degraded_mode,
    )
    if profiler is not None:
        profiler.direct("stats", _pt)
    return result
