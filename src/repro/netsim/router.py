"""Input-queued VC router with a two-stage pipeline (Section 3.2).

Stage 1 performs VC allocation and (speculative) switch allocation in
parallel; stage 2 is switch traversal.  Lookahead routing is modelled
by computing a flit's output port the moment it is written into an
input buffer, so no pipeline stage is charged for routing.

Pipeline timing: a flit granted the switch in cycle ``t`` traverses the
crossbar in ``t+1`` and is written into the downstream input buffer at
``t + 1 + link_latency``, becoming eligible for allocation the cycle
after that.  Credits follow the reverse path with the same latency.

Speculation (Section 5.2): a head flit waiting for an output VC bids
for the crossbar in the same cycle as VC allocation through the
speculative allocator; the speculative grant is *used* only if VC
allocation succeeded in the same cycle and the granted VC has a credit,
otherwise it counts as a misspeculation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

from ..core.speculative import SpeculativeSwitchAllocator
from ..core.vc_allocator import VCAllocator, VCRequest
from ..core.vc_partition import VCPartition
from .buffers import InputVC
from .flit import Flit

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.observer import SimObserver
    from .network import Network

__all__ = ["Router"]

# route function: (network, router, packet) -> output port; it may
# mutate packet.resource_class (phase transitions).
RouteFn = Callable[["Network", "Router", object], int]


class Router:
    """One NoC router instance."""

    def __init__(
        self,
        router_id: int,
        num_ports: int,
        partition: VCPartition,
        route_fn: RouteFn,
        vc_alloc_arch: str = "sep_if",
        vc_alloc_arbiter: str = "rr",
        sw_alloc_arch: str = "sep_if",
        sw_alloc_arbiter: str = "rr",
        speculation: str = "pessimistic",
        buffer_depth: int = 8,
        lookahead: bool = True,
        kernel: str = "fast",
    ) -> None:
        self.id = router_id
        self.num_ports = num_ports
        self.partition = partition
        self.num_vcs = partition.num_vcs
        self.route_fn = route_fn
        self.buffer_depth = buffer_depth
        #: Lookahead routing (Section 3.2): heads are routed on arrival,
        #: keeping routing off the pipeline.  With ``lookahead=False``
        #: a head flit spends one cycle in a routing stage before it can
        #: request a VC (the ablation baseline).
        self.lookahead = lookahead
        #: Allocation kernel: ``"fast"`` (sparse request generation and
        #: sparse allocator cores) or ``"reference"`` (the original dense
        #: implementation).  Both produce bit-identical simulations --
        #: the differential harness in ``tests/perf`` enforces this --
        #: so ``"reference"`` exists as the equivalence oracle and as a
        #: debugging fallback, selectable via ``run_simulation(...,
        #: kernel=...)`` / ``repro simulate --kernel``.  (A property:
        #: assignment also rebinds the dispatched step method.)
        self.kernel = kernel

        P, V = num_ports, self.num_vcs
        self.input_vcs: List[List[InputVC]] = [
            [InputVC(buffer_depth) for _ in range(V)] for _ in range(P)
        ]
        # Output VC bookkeeping: holder (input p, v) or None, and the
        # credit count for the downstream buffer.
        self.output_holder: List[List[Optional[Tuple[int, int]]]] = [
            [None] * V for _ in range(P)
        ]
        self.credits: List[List[int]] = [[buffer_depth] * V for _ in range(P)]

        # out_links[q] = (neighbor kind, object, dest port, latency);
        # wired by the topology builder via connect().
        self.out_links: List[Optional[Tuple[str, object, int, int]]] = [None] * P
        # upstream[p] = (kind, object, neighbor's output port, latency)
        # for credit return.
        self.upstream: List[Optional[Tuple[str, object, int, int]]] = [None] * P

        self.vc_alloc = VCAllocator(
            P, partition, arch=vc_alloc_arch, arbiter=vc_alloc_arbiter, sparse=True
        )
        self.vc_alloc.check_requests = False
        self.sw_alloc = SpeculativeSwitchAllocator(
            P, V, arch=sw_alloc_arch, arbiter=sw_alloc_arbiter, scheme=speculation
        )
        self.sw_alloc.check_requests = False

        # Input VCs with at least one buffered flit, kept incrementally
        # so the per-cycle scan touches only occupied VCs.  Entries are
        # flat ``p * V + v`` indices: ints sort and hash faster than
        # tuples on the per-cycle hot path.
        self._busy: set = set()
        # Flat-index lookup tables for the fast kernel: one list index
        # replaces a divmod / double subscript per busy VC per cycle.
        self._ivc_flat: List[InputVC] = [
            ivc for port_vcs in self.input_vcs for ivc in port_vcs
        ]
        self._pv_pairs: List[Tuple[int, int]] = [
            (p, v) for p in range(P) for v in range(V)
        ]
        # Fast-kernel stall latch: True when the last allocation cycle
        # produced zero requests with no observer/faults attached.  A
        # fully stalled router stays stalled until a flit or credit
        # arrives (its own holders/credits only change through its own
        # departures), so allocation_step can skip it outright.
        self._alloc_idle = False

        # Reusable request buffers (avoid per-cycle allocation).
        self._va_requests: List[Optional[VCRequest]] = [None] * (P * V)
        self._ns_requests: List[List[Optional[int]]] = [[None] * V for _ in range(P)]
        self._sp_requests: List[List[Optional[int]]] = [[None] * V for _ in range(P)]

        # Statistics.
        self.misspeculations = 0
        self.speculative_wins = 0
        self.switch_grants = 0
        # Flits sent per output port (channel utilization accounting).
        self.port_flits = [0] * P

        # Optional instrumentation (repro.obs).  ``None`` is the
        # null-object fast path: every hook site below is one attribute
        # load + identity check when observability is disabled.
        self.observer: Optional["SimObserver"] = None
        # Optional fault injection (repro.faults), wired the same way:
        # ``None`` keeps every hook below to one identity check, so
        # fault-free runs are bit-identical to pre-fault builds.
        self.fault_state = None
        # Precomputed {output port: frozenset(stuck vcs)} for this
        # router (None when it has no stuck VCs), set by
        # attach_fault_state().
        self._stuck_by_port = None
        # Optional phase profiler (repro.obs.profiling), wired like the
        # observer: ``None`` keeps every hook to one identity check so
        # unprofiled runs are bit-identical and pay no clock reads.
        self.profiler = None

    # ------------------------------------------------------------------
    @property
    def kernel(self) -> str:
        return self._kernel

    @kernel.setter
    def kernel(self, value: str) -> None:
        # Rebinding the dispatch target here lets the network's cycle
        # loop call ``_alloc_step`` directly, skipping a per-router
        # per-cycle wrapper frame and string compare.
        self._kernel = value
        if value == "fast":
            self._alloc_step = self._allocation_step_fast
        elif value == "compiled":
            # Deferred: the setter runs from __init__ before the state
            # arrays the generated closure binds exist, so the first
            # allocation cycle triggers codegen and rebinds itself.
            self._alloc_step = self._compiled_bootstrap
        else:
            self._alloc_step = self._allocation_step_reference

    def _compiled_bootstrap(self, network: "Network", now: int) -> None:
        """First-call shim for the ``compiled`` kernel: generate (or
        fetch from the per-spec cache) the specialized step, rebind the
        dispatch target, and run the cycle."""
        from .codegen import compiled_step_for

        step = compiled_step_for(self)
        self._alloc_step = step
        step(network, now)

    # ------------------------------------------------------------------
    def attach_fault_state(self, fault_state) -> None:
        """Wire a :class:`repro.faults.FaultState` into this router.

        Precomputes the per-router views (stuck-VC map, allocator-level
        VC mask) so the per-cycle cost in fault mode stays proportional
        to the faults that actually touch this router.
        """
        self.fault_state = fault_state
        self._alloc_idle = False
        if fault_state is None:
            self._stuck_by_port = None
            self.vc_alloc.fault_mask = None
            self.sw_alloc.fault_mask = None
            return
        self._stuck_by_port = fault_state.stuck_by_port(self.id)
        # Defense in depth: the allocator itself also refuses stuck VCs,
        # so a future request-generation change cannot silently grant
        # a faulted resource.
        self.vc_alloc.fault_mask = fault_state.stuck_flat(self.id, self.num_vcs)

    # ------------------------------------------------------------------
    # wiring (topology builder API)
    # ------------------------------------------------------------------
    def connect_output(
        self, port: int, kind: str, neighbor: object, dest_port: int, latency: int
    ) -> None:
        """Attach output ``port`` to a neighbor router or terminal."""
        self.out_links[port] = (kind, neighbor, dest_port, latency)

    def connect_upstream(
        self, port: int, kind: str, neighbor: object, neighbor_port: int, latency: int
    ) -> None:
        """Record who feeds input ``port`` (for credit return).

        ``neighbor_port`` is the *neighbor's* output port driving this
        input, i.e. the index into its credit table.
        """
        self.upstream[port] = (kind, neighbor, neighbor_port, latency)

    # ------------------------------------------------------------------
    # flit/credit ingress (called by the network event loop)
    # ------------------------------------------------------------------
    def receive_flit(self, network: "Network", port: int, vc: int, flit: Flit) -> None:
        """Buffer write; heads are routed on arrival (lookahead model)."""
        if flit.is_head:
            if self.lookahead:
                prof = self.profiler
                if prof is not None:
                    _t = prof.begin()
                    flit.out_port = self.route_fn(network, self, flit.packet)
                    prof.phase("routing", _t)
                else:
                    flit.out_port = self.route_fn(network, self, flit.packet)
            else:
                flit.out_port = -1  # routed in a dedicated pipeline cycle
        ivc = self.input_vcs[port][vc]
        fs = self.fault_state
        if fs is not None and len(ivc.queue) >= ivc.depth:
            # A duplicated credit let the upstream router overrun this
            # buffer.  Absorb the flit (one elastic slot) and count it
            # instead of tearing the run down -- the overflow is the
            # injected fault's observable effect, not a model bug.
            fs.counters["buffer_overflows"] += 1
            ivc.force_push(flit)
        else:
            # Inlined InputVC.push (once per flit per hop).
            queue = ivc.queue
            n = len(queue)
            if n >= ivc.depth:
                raise RuntimeError(
                    "input VC overflow: credit-based flow control violated"
                )
            queue.append(flit)
            if n >= ivc.high_water:
                ivc.high_water = n + 1
        self._busy.add(port * self.num_vcs + vc)
        self._alloc_idle = False
        if self.observer is not None:
            self.observer.flit_arrived(self.id, port, vc, flit, network.time)

    def receive_credit(self, port: int, vc: int) -> None:
        if self.credits[port][vc] >= self.buffer_depth:
            fs = self.fault_state
            if fs is not None:
                # Duplicated credit beyond buffer capacity: clamp so the
                # counter stays meaningful, but record the excess.
                fs.counters["credit_overflows_absorbed"] += 1
                return
            raise RuntimeError("credit overflow: flow-control accounting bug")
        self.credits[port][vc] += 1
        self._alloc_idle = False

    # ------------------------------------------------------------------
    # one allocation cycle
    # ------------------------------------------------------------------
    def allocation_step(self, network: "Network", now: int) -> None:
        if self._busy and not self._alloc_idle:
            self._alloc_step(network, now)

    def _allocation_step_fast(self, network: "Network", now: int) -> None:
        """Sparse allocation cycle (the profiled hot path).

        Builds the VA/SA request sets directly in the sparse form the
        allocators' ``allocate_sparse`` entry points consume, touching
        only occupied VCs.  Iterates ``_busy`` in sorted order to
        satisfy the allocators' ascending-index preconditions; every
        step below is order-independent (requests land in fixed slots,
        route calls are RNG-free and read state that only mutates after
        allocation), so the result is bit-identical to the reference
        path regardless of set iteration order.

        While building the request set the loop also detects the
        *uncontested* case -- no VC/speculative requests, at most one
        switch request per input port and per output port.  Such a
        request set is granted in full by every allocator architecture,
        so the matching machinery is skipped entirely and only the
        arbiter priority updates are committed
        (:meth:`~repro.core.speculative.SpeculativeSwitchAllocator.grant_uncontested`);
        at typical loads this covers the majority of router cycles.
        Observer runs always take the generic path so the per-cycle
        instrumentation counts stay identical.
        """
        obs = self.observer
        if obs is not None:
            wins0 = self.speculative_wins
            miss0 = self.misspeculations
        prof = self.profiler

        fs = self.fault_state
        if fs is not None:
            blocked = fs.blocked_ports(self.id, now)
            self.sw_alloc.fault_mask = blocked
            stuck = self._stuck_by_port
        else:
            blocked = None
            stuck = None

        ivc_flat = self._ivc_flat
        pv_pairs = self._pv_pairs
        credits = self.credits
        output_holder = self.output_holder
        class_vcs = self.partition.class_vcs_tuple

        va_items: List[Tuple[int, int, List[int]]] = []
        ns_items: List[Tuple[int, int, int]] = []
        sp_items: List[Tuple[int, int, int]] = []
        ns_append = ns_items.append

        uncontested = obs is None
        prev_p = -1
        out_seen = 0  # bitmask of output ports already requested
        did_route = False

        for pv in sorted(self._busy):
            ivc = ivc_flat[pv]
            u = ivc.output_vc
            if u >= 0:
                # Active: bid non-speculatively if a credit exists.
                q = ivc.output_port
                if blocked is not None and q in blocked:
                    assert fs is not None  # blocked ports imply fault state
                    fs.counters["link_blocked_requests"] += 1
                    continue  # link down: the flit waits in place
                if credits[q][u] > 0:
                    p, v = pv_pairs[pv]
                    ns_append((p, v, q))
                    if p == prev_p or (out_seen >> q) & 1:
                        uncontested = False
                    prev_p = p
                    out_seen |= 1 << q
                elif obs is not None:
                    obs.credit_stall(self.id, q, u)
            else:
                front = ivc.queue[0]
                if not front.is_head:
                    continue
                q = front.out_port
                if q < 0:
                    if prof is not None:
                        _t = prof.begin()
                        front.out_port = self.route_fn(network, self, front.packet)
                        prof.phase("routing", _t)
                    else:
                        front.out_port = self.route_fn(network, self, front.packet)
                    did_route = True
                    continue
                if blocked is not None and q in blocked:
                    assert fs is not None  # blocked ports imply fault state
                    fs.counters["link_blocked_requests"] += 1
                    continue
                pkt = front.packet
                holders = output_holder[q]
                cands = [
                    w
                    for w in class_vcs(pkt.message_class, pkt.resource_class)
                    if holders[w] is None
                ]
                if stuck is not None and cands:
                    stuck_here = stuck.get(q)
                    if stuck_here:
                        assert fs is not None  # stuck map implies fault state
                        kept = [
                            w
                            for w in cands
                            if w not in stuck_here
                            or not fs.vc_stuck(self.id, q, w, now)
                        ]
                        fs.counters["stuck_vc_masked"] += len(cands) - len(kept)
                        cands = kept
                if cands:
                    p, v = pv_pairs[pv]
                    va_items.append((pv, q, cands))
                    sp_items.append((p, v, q))
                    uncontested = False
                elif obs is not None:
                    obs.vc_starved(self.id, q)

        if not ns_items and not sp_items:
            # Zero requests and no state touched: with no faults or
            # observer attached the request set cannot change until a
            # flit or credit arrives here, so latch the stall and skip
            # the scan on subsequent cycles (receive_flit /
            # receive_credit clear the latch).
            if fs is None and obs is None and not did_route:
                self._alloc_idle = True
            return

        if uncontested:
            # Conflict-free cycle: every request wins by construction.
            self.sw_alloc.grant_uncontested(ns_items)
            depart = self._depart
            _t = prof.begin() if prof is not None else 0.0
            for p, v, _q in ns_items:
                depart(network, now, p, v)
            if prof is not None:
                prof.phase("link_traversal", _t)
            return

        va_grants: List[Optional[Tuple[int, int]]] = []
        if va_items:
            if prof is not None:
                _t = prof.begin()
                va_grants = self.vc_alloc.allocate_sparse(va_items)
                prof.phase("vc_alloc", _t)
            else:
                va_grants = self.vc_alloc.allocate_sparse(va_items)

        result = self.sw_alloc.allocate_sparse(ns_items, sp_items)

        # Commit this cycle's VC grants.
        granted_now = {}
        for (flat, _q, _cands), g in zip(va_items, va_grants):
            if g is not None:
                p, v = pv_pairs[flat]
                q, u = g
                ivc = ivc_flat[flat]
                ivc.assign_output(q, u)
                output_holder[q][u] = (p, v)
                granted_now[(p, v)] = g
                if obs is not None:
                    obs.vc_granted(self.id, p, v, ivc.queue[0], now)

        # Non-speculative switch winners depart.
        depart = self._depart
        _t = prof.begin() if prof is not None else 0.0
        for p, g in enumerate(result.nonspec):
            if g is not None:
                depart(network, now, p, g[0])

        # Speculative winners depart only if their VC allocation also
        # succeeded this cycle and the granted VC has a credit.
        for p, g in enumerate(result.spec):
            if g is None:
                continue
            v, q = g
            vag = granted_now.get((p, v))
            if vag is not None and vag[0] == q and credits[q][vag[1]] > 0:
                self.speculative_wins += 1
                depart(network, now, p, v)
            else:
                self.misspeculations += 1
        self.misspeculations += result.spec_discarded
        if prof is not None:
            prof.phase("link_traversal", _t)

        if obs is not None:
            obs.alloc_cycle(
                self.id,
                now,
                va_requests=len(va_items),
                va_grants=len(granted_now),
                sa_nonspec_requests=len(ns_items),
                sa_spec_requests=len(sp_items),
                sa_nonspec_grants=result.grant_counts()[0],
                sa_spec_wins=self.speculative_wins - wins0,
                sa_spec_kills=self.misspeculations - miss0,
            )

    def _allocation_step_reference(self, network: "Network", now: int) -> None:
        """Dense allocation cycle -- the original implementation, kept
        as the equivalence oracle for the fast kernel (only the busy-set
        bookkeeping, shared with the fast path, uses flat indices)."""
        P, V = self.num_ports, self.num_vcs
        part = self.partition
        va_req = self._va_requests
        ns_req = self._ns_requests
        sp_req = self._sp_requests

        if not self._busy:
            return

        obs = self.observer
        if obs is not None:
            wins0 = self.speculative_wins
            miss0 = self.misspeculations
        prof = self.profiler

        fs = self.fault_state
        if fs is not None:
            # Link faults active this cycle: mask the affected output
            # ports at both the request-generation level (below) and
            # inside the switch allocator (backstop).
            blocked = fs.blocked_ports(self.id, now)
            self.sw_alloc.fault_mask = blocked
            stuck = self._stuck_by_port
        else:
            blocked = None
            stuck = None

        any_va = False
        any_ns = False
        any_sp = False
        waiting: List[Tuple[int, int]] = []
        touched: List[Tuple[int, int]] = []
        for pv in self._busy:
            p, v = self._pv_pairs[pv]
            ivc = self.input_vcs[p][v]
            front = ivc.queue[0]
            if ivc.output_vc >= 0:
                # Active: bid non-speculatively if a credit exists.
                if blocked is not None and ivc.output_port in blocked:
                    assert fs is not None  # blocked ports imply fault state
                    fs.counters["link_blocked_requests"] += 1
                    continue  # link down: the flit waits in place
                if self.credits[ivc.output_port][ivc.output_vc] > 0:
                    ns_req[p][v] = ivc.output_port
                    any_ns = True
                    touched.append((p, v))
                elif obs is not None:
                    obs.credit_stall(self.id, ivc.output_port, ivc.output_vc)
            elif front.is_head:
                if front.out_port < 0:
                    # Non-lookahead pipeline: this cycle is the routing
                    # stage; VA/SA requests start next cycle.
                    if prof is not None:
                        _t = prof.begin()
                        front.out_port = self.route_fn(network, self, front.packet)
                        prof.phase("routing", _t)
                    else:
                        front.out_port = self.route_fn(network, self, front.packet)
                    continue
                # Waiting for VC allocation: request free legal VCs
                # at the routed output port, and bid speculatively.
                q = front.out_port
                if blocked is not None and q in blocked:
                    assert fs is not None  # blocked ports imply fault state
                    fs.counters["link_blocked_requests"] += 1
                    continue  # link down: don't bid for a VC there yet
                pkt = front.packet
                holders = self.output_holder[q]
                cands = tuple(
                    u
                    for u in part.class_vcs(pkt.message_class, pkt.resource_class)
                    if holders[u] is None
                )
                if stuck is not None and cands:
                    stuck_here = stuck.get(q)
                    if stuck_here:
                        assert fs is not None  # stuck map implies fault state
                        kept = tuple(
                            u
                            for u in cands
                            if u not in stuck_here
                            or not fs.vc_stuck(self.id, q, u, now)
                        )
                        fs.counters["stuck_vc_masked"] += len(cands) - len(kept)
                        cands = kept
                if cands:
                    va_req[p * V + v] = VCRequest(q, cands)
                    waiting.append((p, v))
                    any_va = True
                    sp_req[p][v] = q
                    any_sp = True
                    touched.append((p, v))
                elif obs is not None:
                    obs.vc_starved(self.id, q)

        # VC allocation.
        va_grants: List[Optional[Tuple[int, int]]] = []
        if any_va:
            if prof is not None:
                _t = prof.begin()
                va_grants = self.vc_alloc.allocate(va_req)
                prof.phase("vc_alloc", _t)
            else:
                va_grants = self.vc_alloc.allocate(va_req)
            for p, v in waiting:
                va_req[p * V + v] = None  # reset the reusable buffer

        if not (any_ns or any_sp):
            return

        # Switch allocation (both speculative and non-speculative).
        result = self.sw_alloc.allocate(
            ns_req, sp_req, any_nonspec=any_ns, any_spec=any_sp
        )
        if obs is not None:
            ns_count = sum(1 for p, v in touched if ns_req[p][v] is not None)
            sp_count = len(touched) - ns_count
        # Reset the reusable request buffers for the next cycle.
        for p, v in touched:
            ns_req[p][v] = None
            sp_req[p][v] = None

        # Commit this cycle's VC grants.
        granted_now = {}
        if any_va:
            for p, v in waiting:
                g = va_grants[p * V + v]
                if g is not None:
                    q, u = g
                    ivc = self.input_vcs[p][v]
                    ivc.assign_output(q, u)
                    self.output_holder[q][u] = (p, v)
                    granted_now[(p, v)] = g
                    if obs is not None:
                        obs.vc_granted(self.id, p, v, ivc.queue[0], now)

        # Non-speculative switch winners depart.
        _t = prof.begin() if prof is not None else 0.0
        for p, g in enumerate(result.nonspec):
            if g is not None:
                v, q = g
                self._depart(network, now, p, v)

        # Speculative winners depart only if their VC allocation also
        # succeeded this cycle and the granted VC has a credit.
        for p, g in enumerate(result.spec):
            if g is None:
                continue
            v, q = g
            vag = granted_now.get((p, v))
            if vag is not None and vag[0] == q and self.credits[q][vag[1]] > 0:
                self.speculative_wins += 1
                self._depart(network, now, p, v)
            else:
                self.misspeculations += 1
        self.misspeculations += result.spec_discarded
        if prof is not None:
            prof.phase("link_traversal", _t)

        if obs is not None:
            obs.alloc_cycle(
                self.id,
                now,
                va_requests=len(waiting),
                va_grants=len(granted_now),
                sa_nonspec_requests=ns_count,
                sa_spec_requests=sp_count,
                sa_nonspec_grants=result.grant_counts()[0],
                sa_spec_wins=self.speculative_wins - wins0,
                sa_spec_kills=self.misspeculations - miss0,
            )

    # ------------------------------------------------------------------
    def _depart(self, network: "Network", now: int, p: int, v: int) -> None:
        """Send the front flit of input VC (p, v) through the crossbar.

        The buffer pop and event scheduling are inlined (rather than
        going through ``InputVC.pop_front`` / ``Network.schedule_*``):
        this runs once per flit per hop and the call overhead dominates
        the work.  Semantics are identical to those helpers.
        """
        pv = p * self.num_vcs + v
        ivc = self._ivc_flat[pv]
        q, u = ivc.output_port, ivc.output_vc
        queue = ivc.queue
        flit = queue.popleft()
        if flit.is_tail:
            # Tail: the packet releases its input VC and output VC.
            ivc.output_port = -1
            ivc.output_vc = -1
            self.output_holder[q][u] = None
        if not queue:
            self._busy.discard(pv)
        self.switch_grants += 1
        self.port_flits[q] += 1

        # Consume a downstream credit.
        cr = self.credits[q]
        cr[u] -= 1
        assert cr[u] >= 0, "negative credits"

        # SA grant in cycle `now`, switch traversal in `now+1`, `latency`
        # cycles on the wire; the downstream buffer write makes the flit
        # eligible for allocation in `now + 2 + latency`.
        kind, neighbor, dest_port, latency = self.out_links[q]
        when = now + 2 + latency
        events = network._flit_events
        lst = events.get(when)
        if lst is None:
            events[when] = [(kind, neighbor, dest_port, u, flit)]
        else:
            lst.append((kind, neighbor, dest_port, u, flit))

        # The buffer slot frees at switch traversal (`now+1`); the credit
        # travels upstream and is usable one cycle after it lands.
        up = self.upstream[p]
        if up is not None:
            up_kind, up_obj, up_port, up_lat = up
            when = now + 2 + up_lat
            events = network._credit_events
            lst = events.get(when)
            if lst is None:
                events[when] = [(up_kind, up_obj, up_port, v)]
            else:
                lst.append((up_kind, up_obj, up_port, v))

        if self.observer is not None:
            self.observer.flit_departed(self.id, p, v, q, u, flit, now)

    # ------------------------------------------------------------------
    def buffer_occupancy(self, port: int) -> int:
        """Total buffered flits at one input port (UGAL congestion metric
        uses the credit view on the *output* side; this is for stats)."""
        return sum(ivc.occupancy for ivc in self.input_vcs[port])

    def output_queue_depth(self, port: int) -> int:
        """Credits consumed across the VCs of an output port -- the local
        congestion estimate used by UGAL-L."""
        return sum(self.buffer_depth - c for c in self.credits[port])
