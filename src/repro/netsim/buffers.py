"""Input-VC buffer state for the router model.

Buffers are statically partitioned: each input VC owns ``buffer_depth``
flit slots (8 in the paper's configuration).  The VC state machine is
implicit in the fields: a VC with a head flit at the front and no
output VC is *waiting for VC allocation*; with an output VC assigned it
is *active* and competes in switch allocation.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from .flit import Flit

__all__ = ["InputVC"]


class InputVC:
    """One virtual-channel input buffer."""

    __slots__ = ("queue", "output_port", "output_vc", "depth", "high_water")

    def __init__(self, depth: int) -> None:
        self.queue: Deque[Flit] = deque()
        self.depth = depth
        # Route/allocation state for the packet currently at the front.
        self.output_port = -1
        self.output_vc = -1
        # Peak occupancy ever reached (observability: true high-water
        # mark, exact even between metric samples).
        self.high_water = 0

    @property
    def occupancy(self) -> int:
        return len(self.queue)

    @property
    def front(self) -> Optional[Flit]:
        return self.queue[0] if self.queue else None

    @property
    def waiting_for_vc(self) -> bool:
        """Head flit at the front without an assigned output VC."""
        f = self.front
        return f is not None and f.is_head and self.output_vc < 0

    @property
    def active(self) -> bool:
        """Holds an output VC and has a flit ready to traverse."""
        return self.output_vc >= 0 and bool(self.queue)

    def push(self, flit: Flit) -> None:
        if len(self.queue) >= self.depth:
            raise RuntimeError(
                "input VC overflow: credit-based flow control violated"
            )
        self.queue.append(flit)
        if len(self.queue) > self.high_water:
            self.high_water = len(self.queue)

    def force_push(self, flit: Flit) -> None:
        """Append past the depth limit.

        Only the fault injector uses this: a duplicated credit can let
        the upstream router legitimately overrun this buffer, and the
        overflow is the fault's observable effect rather than a
        flow-control bug (the router counts it as ``buffer_overflows``).
        """
        self.queue.append(flit)
        if len(self.queue) > self.high_water:
            self.high_water = len(self.queue)

    def assign_output(self, port: int, vc: int) -> None:
        self.output_port = port
        self.output_vc = vc

    def pop_front(self) -> Tuple[Flit, bool]:
        """Remove the front flit; returns (flit, packet_finished)."""
        flit = self.queue.popleft()
        finished = flit.is_tail
        if finished:
            self.output_port = -1
            self.output_vc = -1
        return flit, finished
