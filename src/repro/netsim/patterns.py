"""Synthetic traffic patterns beyond uniform random.

Section 3.2 notes that "additional simulation runs with other synthetic
traffic patterns suggest that our conclusions are largely invariant to
traffic pattern selection"; these standard patterns (Dally & Towles,
ch. 3) let the benchmarks check that claim.  Each helper returns a
``dest_fn`` compatible with :class:`repro.netsim.traffic.Terminal`.

Deterministic permutations that map a terminal to itself fall back to
a uniform random destination for that terminal (a self-addressed packet
would never enter the network).
"""

from __future__ import annotations

import math
from typing import Callable, List

import numpy as np

from .traffic import uniform_random_dest

__all__ = [
    "transpose_pattern",
    "bit_complement_pattern",
    "bit_reverse_pattern",
    "shuffle_pattern",
    "neighbor_pattern",
    "hotspot_pattern",
]

DestFn = Callable[[np.random.Generator, int, int], int]


def _permutation_fn(mapping: List[int]) -> DestFn:
    def pick(rng: np.random.Generator, src: int, num_terminals: int) -> int:
        dest = mapping[src]
        if dest == src:
            return uniform_random_dest(rng, src, num_terminals)
        return dest

    return pick


def _bits(num_terminals: int) -> int:
    b = int(math.log2(num_terminals))
    if 1 << b != num_terminals:
        raise ValueError("bit-permutation patterns need a power-of-two size")
    return b


def transpose_pattern(num_terminals: int) -> DestFn:
    """Matrix transpose: swap the high and low halves of the address."""
    b = _bits(num_terminals)
    half = b // 2
    if 2 * half != b:
        raise ValueError("transpose needs an even number of address bits")
    mask = (1 << half) - 1

    mapping = [((t & mask) << half) | (t >> half) for t in range(num_terminals)]
    return _permutation_fn(mapping)


def bit_complement_pattern(num_terminals: int) -> DestFn:
    """Destination is the bitwise complement of the source."""
    mapping = [t ^ (num_terminals - 1) for t in range(num_terminals)]
    return _permutation_fn(mapping)


def bit_reverse_pattern(num_terminals: int) -> DestFn:
    """Destination is the bit-reversed source address."""
    b = _bits(num_terminals)
    mapping = [
        int(format(t, f"0{b}b")[::-1], 2) for t in range(num_terminals)
    ]
    return _permutation_fn(mapping)


def shuffle_pattern(num_terminals: int) -> DestFn:
    """Perfect shuffle: rotate the address left by one bit."""
    b = _bits(num_terminals)
    top = 1 << (b - 1)
    mapping = [((t << 1) | (t >> (b - 1))) & (num_terminals - 1) for t in range(num_terminals)]
    del top
    return _permutation_fn(mapping)


def neighbor_pattern(num_terminals: int, offset: int = 1) -> DestFn:
    """Each terminal sends to (src + offset) mod N."""
    mapping = [(t + offset) % num_terminals for t in range(num_terminals)]
    return _permutation_fn(mapping)


def hotspot_pattern(
    hotspots: List[int], hot_fraction: float = 0.2
) -> DestFn:
    """Background uniform traffic plus a fraction aimed at hotspots."""
    if not hotspots:
        raise ValueError("need at least one hotspot terminal")
    if not 0.0 < hot_fraction <= 1.0:
        raise ValueError("hot_fraction must be in (0, 1]")

    def pick(rng: np.random.Generator, src: int, num_terminals: int) -> int:
        if rng.random() < hot_fraction:
            dest = hotspots[int(rng.integers(len(hotspots)))]
            if dest != src:
                return dest
        return uniform_random_dest(rng, src, num_terminals)

    return pick
