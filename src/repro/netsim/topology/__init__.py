"""Topology builders: the paper's two 64-node networks plus a torus
extension exercising dateline resource classes (Section 4.2)."""

from .fbfly import build_fbfly
from .mesh import build_mesh
from .torus import build_torus

__all__ = ["build_mesh", "build_fbfly", "build_torus"]
