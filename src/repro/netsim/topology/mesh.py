"""8x8 mesh topology (Section 3): P = 5 ports, one terminal per router.

All links have a latency of one cycle.  Dimension-order routing with a
single resource class; two message classes (request/reply) give
V = 2 * C VCs for C VCs per class.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ...core.vc_partition import VCPartition
from ..network import Network
from ..router import Router
from ..routing.dor import (
    DORMeshRouting,
    PORT_EAST,
    PORT_NORTH,
    PORT_SOUTH,
    PORT_TERMINAL,
    PORT_WEST,
)
from ..routing.ft import FTDORMeshRouting
from ..traffic import Terminal, uniform_random_dest

__all__ = ["build_mesh"]

LINK_LATENCY = 1


def build_mesh(
    k: int = 8,
    vcs_per_class: int = 1,
    packet_rate: float = 0.0,
    seed: int = 1,
    vc_alloc_arch: str = "sep_if",
    vc_alloc_arbiter: str = "rr",
    sw_alloc_arch: str = "sep_if",
    sw_alloc_arbiter: str = "rr",
    speculation: str = "pessimistic",
    buffer_depth: int = 8,
    read_fraction: float = 0.5,
    dest_fn: Optional[Callable] = None,
    lookahead: bool = True,
    routing: str = "default",
) -> Network:
    """Construct a ``k x k`` mesh network with the paper's router.

    ``packet_rate`` is the per-terminal *request-packet* arrival rate
    (packets/cycle); with the request-reply transaction mix this yields
    an offered load of roughly ``6 * packet_rate`` flits/cycle/terminal.

    ``routing`` selects the routing mode: ``"default"`` is plain
    X-first DOR (V = 2 * C); ``"ft_dor"`` is fault-aware DOR with a
    reserved up*/down* escape class (V = 4 * C) that detours around
    permanent link faults (see :mod:`repro.netsim.routing.ft`).
    """
    if routing == "ft_dor":
        routing_obj = FTDORMeshRouting(k)
        partition = routing_obj.partition(vcs_per_class)
    elif routing == "default":
        routing_obj = DORMeshRouting(k)
        partition = VCPartition.mesh(vcs_per_class)
    else:
        raise ValueError(
            f"unknown mesh routing mode {routing!r}; "
            "expected 'default' or 'ft_dor'"
        )
    net = Network(routing_obj)

    def route_fn(network, router, packet):
        return routing_obj.route(network, router, packet)

    for rid in range(k * k):
        net.routers.append(
            Router(
                rid,
                5,
                partition,
                route_fn,
                vc_alloc_arch=vc_alloc_arch,
                vc_alloc_arbiter=vc_alloc_arbiter,
                sw_alloc_arch=sw_alloc_arch,
                sw_alloc_arbiter=sw_alloc_arbiter,
                speculation=speculation,
                buffer_depth=buffer_depth,
                lookahead=lookahead,
            )
        )

    # Router-to-router links.  A router's +x output feeds its eastern
    # neighbor's -x input, etc.
    for y in range(k):
        for x in range(k):
            a = net.routers[y * k + x]
            if x + 1 < k:
                b = net.routers[y * k + x + 1]
                a.connect_output(PORT_EAST, "router", b, PORT_WEST, LINK_LATENCY)
                b.connect_upstream(PORT_WEST, "router", a, PORT_EAST, LINK_LATENCY)
                b.connect_output(PORT_WEST, "router", a, PORT_EAST, LINK_LATENCY)
                a.connect_upstream(PORT_EAST, "router", b, PORT_WEST, LINK_LATENCY)
            if y + 1 < k:
                b = net.routers[(y + 1) * k + x]
                a.connect_output(PORT_NORTH, "router", b, PORT_SOUTH, LINK_LATENCY)
                b.connect_upstream(PORT_SOUTH, "router", a, PORT_NORTH, LINK_LATENCY)
                b.connect_output(PORT_SOUTH, "router", a, PORT_NORTH, LINK_LATENCY)
                a.connect_upstream(PORT_NORTH, "router", b, PORT_SOUTH, LINK_LATENCY)

    # Terminals (one per router; terminal id == router id).
    num_terminals = k * k
    for rid in range(num_terminals):
        router = net.routers[rid]
        term = Terminal(
            rid,
            router,
            PORT_TERMINAL,
            LINK_LATENCY,
            packet_rate,
            np.random.default_rng((seed, rid)),
            read_fraction=read_fraction,
            dest_fn=dest_fn or uniform_random_dest,
            num_terminals=num_terminals,
        )
        net.terminals.append(term)
        router.connect_output(PORT_TERMINAL, "terminal", term, 0, LINK_LATENCY)
        router.connect_upstream(PORT_TERMINAL, "terminal", term, 0, LINK_LATENCY)
    return net
