"""2-D flattened butterfly topology (Section 3, [Kim et al. 2007]).

A 4x4 grid of routers, each concentrating four terminals (64 nodes
total) and fully connected within its row and its column: P = 4 + 3 + 3
= 10 ports.  Link latency is the grid distance spanned by the flattened
channel (one to three cycles, per Section 3.2).  UGAL routing with two
resource classes (non-minimal phase -> minimal phase).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ...core.vc_partition import VCPartition
from ..network import Network
from ..router import Router
from ..routing.ft import FTUGALRouting
from ..routing.ugal import UGALRouting
from ..traffic import Terminal, uniform_random_dest

__all__ = ["build_fbfly"]

TERMINAL_LINK_LATENCY = 1


def build_fbfly(
    rows: int = 4,
    cols: int = 4,
    concentration: int = 4,
    vcs_per_class: int = 1,
    packet_rate: float = 0.0,
    seed: int = 1,
    vc_alloc_arch: str = "sep_if",
    vc_alloc_arbiter: str = "rr",
    sw_alloc_arch: str = "sep_if",
    sw_alloc_arbiter: str = "rr",
    speculation: str = "pessimistic",
    buffer_depth: int = 8,
    read_fraction: float = 0.5,
    dest_fn: Optional[Callable] = None,
    lookahead: bool = True,
    ugal_threshold: int = 0,
    routing: str = "default",
) -> Network:
    """Construct the flattened-butterfly network with the paper's router.

    ``routing`` selects the routing mode: ``"default"`` is stock
    UGAL-L; ``"ft_ugal"`` repairs the source-side path decision around
    permanent link faults while keeping UGAL's two-phase VC discipline
    (see :mod:`repro.netsim.routing.ft`).  Both use the same VC
    partition, so V is unchanged.
    """
    partition = VCPartition.fbfly(vcs_per_class)
    if routing == "ft_ugal":
        routing_obj = FTUGALRouting(rows, cols, concentration, ugal_threshold)
    elif routing == "default":
        routing_obj = UGALRouting(rows, cols, concentration, ugal_threshold)
    else:
        raise ValueError(
            f"unknown fbfly routing mode {routing!r}; "
            "expected 'default' or 'ft_ugal'"
        )
    net = Network(routing_obj)
    num_ports = concentration + (cols - 1) + (rows - 1)

    def route_fn(network, router, packet):
        return routing_obj.route(network, router, packet)

    for rid in range(rows * cols):
        net.routers.append(
            Router(
                rid,
                num_ports,
                partition,
                route_fn,
                vc_alloc_arch=vc_alloc_arch,
                vc_alloc_arbiter=vc_alloc_arbiter,
                sw_alloc_arch=sw_alloc_arch,
                sw_alloc_arbiter=sw_alloc_arbiter,
                speculation=speculation,
                buffer_depth=buffer_depth,
                lookahead=lookahead,
            )
        )

    # Row links: every router pair sharing a row; latency = column span.
    for r in range(rows):
        for c1 in range(cols):
            for c2 in range(c1 + 1, cols):
                a = net.routers[r * cols + c1]
                b = net.routers[r * cols + c2]
                pa = routing_obj.row_port(a.id, c2)
                pb = routing_obj.row_port(b.id, c1)
                lat = abs(c1 - c2)
                a.connect_output(pa, "router", b, pb, lat)
                b.connect_upstream(pb, "router", a, pa, lat)
                b.connect_output(pb, "router", a, pa, lat)
                a.connect_upstream(pa, "router", b, pb, lat)

    # Column links: latency = row span.
    for c in range(cols):
        for r1 in range(rows):
            for r2 in range(r1 + 1, rows):
                a = net.routers[r1 * cols + c]
                b = net.routers[r2 * cols + c]
                pa = routing_obj.col_port(a.id, r2)
                pb = routing_obj.col_port(b.id, r1)
                lat = abs(r1 - r2)
                a.connect_output(pa, "router", b, pb, lat)
                b.connect_upstream(pb, "router", a, pa, lat)
                b.connect_output(pb, "router", a, pa, lat)
                a.connect_upstream(pa, "router", b, pb, lat)

    # Terminals: `concentration` per router.
    num_terminals = rows * cols * concentration
    for tid in range(num_terminals):
        router = net.routers[tid // concentration]
        port = tid % concentration
        term = Terminal(
            tid,
            router,
            port,
            TERMINAL_LINK_LATENCY,
            packet_rate,
            np.random.default_rng((seed, tid)),
            read_fraction=read_fraction,
            dest_fn=dest_fn or uniform_random_dest,
            num_terminals=num_terminals,
        )
        net.terminals.append(term)
        router.connect_output(port, "terminal", term, 0, TERMINAL_LINK_LATENCY)
        router.connect_upstream(port, "terminal", term, 0, TERMINAL_LINK_LATENCY)
    return net
