"""k-ary 2-cube (torus) topology -- an extension beyond the paper's two
networks that exercises the dateline resource-class machinery of
Section 4.2 on a real cyclic topology.

Same port convention as the mesh (0 = terminal, 1..4 = +x/-x/+y/-y) but
every ring closes with a wraparound link, so all five ports are wired.
V = 2 message classes x 4 dateline resource classes x C.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..network import Network
from ..router import Router
from ..routing.dor import (
    PORT_EAST,
    PORT_NORTH,
    PORT_SOUTH,
    PORT_TERMINAL,
    PORT_WEST,
)
from ..routing.torus import TorusDatelineRouting
from ..traffic import Terminal, uniform_random_dest

__all__ = ["build_torus"]

LINK_LATENCY = 1


def build_torus(
    k: int = 8,
    vcs_per_class: int = 1,
    packet_rate: float = 0.0,
    seed: int = 1,
    vc_alloc_arch: str = "sep_if",
    vc_alloc_arbiter: str = "rr",
    sw_alloc_arch: str = "sep_if",
    sw_alloc_arbiter: str = "rr",
    speculation: str = "pessimistic",
    buffer_depth: int = 8,
    read_fraction: float = 0.5,
    dest_fn: Optional[Callable] = None,
    lookahead: bool = True,
) -> Network:
    """Construct a ``k x k`` torus with dateline DOR routing."""
    routing = TorusDatelineRouting(k)
    partition = routing.partition(vcs_per_class)
    net = Network(routing)

    def route_fn(network, router, packet):
        return routing.route(network, router, packet)

    for rid in range(k * k):
        net.routers.append(
            Router(
                rid,
                5,
                partition,
                route_fn,
                vc_alloc_arch=vc_alloc_arch,
                vc_alloc_arbiter=vc_alloc_arbiter,
                sw_alloc_arch=sw_alloc_arch,
                sw_alloc_arbiter=sw_alloc_arbiter,
                speculation=speculation,
                buffer_depth=buffer_depth,
                lookahead=lookahead,
            )
        )

    # Ring links with wraparound.
    for y in range(k):
        for x in range(k):
            a = net.routers[y * k + x]
            b = net.routers[y * k + (x + 1) % k]  # eastern neighbor
            a.connect_output(PORT_EAST, "router", b, PORT_WEST, LINK_LATENCY)
            b.connect_upstream(PORT_WEST, "router", a, PORT_EAST, LINK_LATENCY)
            b.connect_output(PORT_WEST, "router", a, PORT_EAST, LINK_LATENCY)
            a.connect_upstream(PORT_EAST, "router", b, PORT_WEST, LINK_LATENCY)

            c = net.routers[((y + 1) % k) * k + x]  # northern neighbor
            a.connect_output(PORT_NORTH, "router", c, PORT_SOUTH, LINK_LATENCY)
            c.connect_upstream(PORT_SOUTH, "router", a, PORT_NORTH, LINK_LATENCY)
            c.connect_output(PORT_SOUTH, "router", a, PORT_NORTH, LINK_LATENCY)
            a.connect_upstream(PORT_NORTH, "router", c, PORT_SOUTH, LINK_LATENCY)

    num_terminals = k * k
    for rid in range(num_terminals):
        router = net.routers[rid]
        term = Terminal(
            rid,
            router,
            PORT_TERMINAL,
            LINK_LATENCY,
            packet_rate,
            np.random.default_rng((seed, rid)),
            read_fraction=read_fraction,
            dest_fn=dest_fn or uniform_random_dest,
            num_terminals=num_terminals,
        )
        net.terminals.append(term)
        router.connect_output(PORT_TERMINAL, "terminal", term, 0, LINK_LATENCY)
        router.connect_upstream(PORT_TERMINAL, "terminal", term, 0, LINK_LATENCY)
    return net
