"""Cycle-accurate NoC simulator (the paper's network-level testbed).

Input-queued VC routers with a two-stage pipeline (VA+SA / ST),
credit-based flow control, lookahead routing and speculative switch
allocation, on the paper's two 64-node topologies: an 8x8 mesh with
dimension-order routing and a 4x4 flattened butterfly (concentration 4)
with UGAL routing.  Traffic is the request-reply transaction mix of
Section 3.2.
"""

from .flit import Flit, Packet, PacketType
from .network import Network
from .router import Router
from .simulator import (
    SimulationConfig,
    SimulationResult,
    build_network,
    run_simulation,
)
from .topology import build_fbfly, build_mesh, build_torus
from .traffic import Terminal, uniform_random_dest

__all__ = [
    "Flit",
    "Network",
    "Packet",
    "PacketType",
    "Router",
    "SimulationConfig",
    "SimulationResult",
    "Terminal",
    "build_fbfly",
    "build_mesh",
    "build_torus",
    "build_network",
    "run_simulation",
    "uniform_random_dest",
]
