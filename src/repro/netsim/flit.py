"""Packets and flits for the cycle-accurate network simulator.

Traffic follows Section 3.2: request/reply transactions where read
requests and write replies are single-flit packets, while read replies
and write requests carry a head flit plus four payload flits.  Requests
travel in message class 0, replies in message class 1 (which is what
prevents protocol deadlock at the network boundary).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

__all__ = ["PacketType", "Packet", "Flit", "MESSAGE_CLASS_REQUEST", "MESSAGE_CLASS_REPLY"]

MESSAGE_CLASS_REQUEST = 0
MESSAGE_CLASS_REPLY = 1

_packet_ids = itertools.count()


class PacketType(Enum):
    """Transaction packet types with their flit counts (Section 3.2)."""

    READ_REQUEST = ("read_request", 1, MESSAGE_CLASS_REQUEST)
    WRITE_REQUEST = ("write_request", 5, MESSAGE_CLASS_REQUEST)
    READ_REPLY = ("read_reply", 5, MESSAGE_CLASS_REPLY)
    WRITE_REPLY = ("write_reply", 1, MESSAGE_CLASS_REPLY)

    def __init__(self, label: str, size: int, message_class: int) -> None:
        self.label = label
        self.size = size
        self.message_class = message_class

    @property
    def is_request(self) -> bool:
        return self.message_class == MESSAGE_CLASS_REQUEST

    @property
    def reply_type(self) -> "PacketType":
        """The reply generated when this request reaches its destination."""
        if self is PacketType.READ_REQUEST:
            return PacketType.READ_REPLY
        if self is PacketType.WRITE_REQUEST:
            return PacketType.WRITE_REPLY
        raise ValueError(f"{self} is not a request type")


@dataclass(slots=True)
class Packet:
    """One multi-flit packet travelling through the network.

    ``resource_class`` is the packet's *current* deadlock-avoidance
    phase (mutated by the routing function, e.g. when a UGAL packet
    passes its intermediate router); ``intermediate`` holds the Valiant
    intermediate router for non-minimally routed packets.
    """

    src: int  # source terminal id
    dest: int  # destination terminal id
    ptype: PacketType
    birth_time: int
    pid: int = field(default_factory=lambda: next(_packet_ids))
    resource_class: int = 0
    intermediate: Optional[int] = None  # router id for Valiant routing
    inject_time: Optional[int] = None  # head flit entered the network
    arrival_time: Optional[int] = None  # tail flit ejected
    # Fault-aware routing state: ``misroutes`` counts detour decisions
    # taken for this packet (bounded by construction: at most one escape
    # transition on the mesh, one path repair on the fbfly), and
    # ``escape_phase`` is the up*/down* phase within the escape class
    # (0 = may still ascend, 1 = descending only).
    misroutes: int = 0
    escape_phase: int = 0

    # Cached copy of ``ptype.message_class``: the router's per-cycle
    # request generation reads this once per waiting head flit, and a
    # plain attribute beats a property + enum-attribute chain there.
    message_class: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.message_class = self.ptype.message_class

    @property
    def size(self) -> int:
        return self.ptype.size

    def make_flits(self) -> List["Flit"]:
        """The packet's flit train (head first, tail last)."""
        return [
            Flit(self, index=i, is_head=(i == 0), is_tail=(i == self.size - 1))
            for i in range(self.size)
        ]


@dataclass(slots=True)
class Flit:
    """One flow-control unit.

    ``out_port`` is filled in by (lookahead) routing when the flit
    enters a router and names the output port at that router.
    """

    packet: Packet
    index: int
    is_head: bool
    is_tail: bool
    out_port: int = -1

    def __repr__(self) -> str:
        kind = "H" if self.is_head else "T" if self.is_tail else "B"
        return f"Flit({kind} pkt={self.packet.pid} idx={self.index})"
