"""Fault-aware routing with deadlock-free graceful degradation.

Two routing modes (``SimulationConfig.routing="ft_dor"``) that detour
around *permanently* faulted links learned from :class:`FaultState`:

**Mesh** (:class:`FTDORMeshRouting`) -- two resource classes:

* class 0 is plain X-first DOR (acyclic channel-dependency graph);
* class 1 is a reserved *escape* class routed up*/down* on the
  surviving link graph: a BFS spanning forest per connected component
  (rooted at the minimum-id router) orients every healthy link, a legal
  escape path takes "up" hops (toward lower ``(level, id)``) before
  "down" hops, and per-destination next-hop tables pick the minimal
  path within that discipline.

A packet stays in class 0 until its deterministic DOR path hits a
permanently faulted output port; there it transitions one-way into the
escape class and follows the table to the destination.  Deadlock
freedom composes: the class-0 CDG is acyclic (X-first DOR), the
class-1 CDG is acyclic (up*/down* imposes a total order on escape
channel acquisition), and the partition's transition matrix only
permits 0 -> 1, so the union is acyclic.  Each packet makes at most one
escape transition (``Packet.misroutes``), and within the escape class
hop distance to the destination strictly decreases, so routing is also
livelock-free.

**Flattened butterfly** (:class:`FTUGALRouting`) -- keeps UGAL's
two-phase (non-minimal -> minimal) VC discipline and *repairs* the
source routing decision: if the chosen minimal or Valiant path crosses
a permanently faulted link, the packet is re-pointed at the minimal
path when clean, else at the lowest-id intermediate router with both
legs clean.  Repaired paths have exactly the stock UGAL phase/channel
structure, so the deadlock argument is unchanged.

Both modes expose ``routable(src_terminal, dest_terminal)`` after
``bind_fault_state``; :class:`~repro.netsim.network.Network` wires it
into the terminals so offered packets whose source/destination pair is
partitioned are dropped (and counted) at injection instead of
stranding in the fabric.  Transient link faults are *not* routed
around -- the allocators mask them per-cycle and the watchdog defers
stall verdicts while they are active.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Tuple

from ...core.vc_partition import VCPartition
from .dor import (
    DORMeshRouting,
    PORT_EAST,
    PORT_NORTH,
    PORT_SOUTH,
    PORT_TERMINAL,
    PORT_WEST,
)
from .ugal import PHASE_MINIMAL, PHASE_NONMINIMAL, UGALRouting

if TYPE_CHECKING:  # pragma: no cover
    from ...faults.state import FaultState
    from ..flit import Packet
    from ..network import Network
    from ..router import Router
    from ..traffic import Terminal

__all__ = ["FTDORMeshRouting", "FTUGALRouting", "ESCAPE_CLASS"]

#: Resource class reserved for up*/down* escape routing on the mesh.
ESCAPE_CLASS = 1

_MESH_LINK_PORTS = (PORT_EAST, PORT_WEST, PORT_NORTH, PORT_SOUTH)
_REVERSE_PORT = {
    PORT_EAST: PORT_WEST,
    PORT_WEST: PORT_EAST,
    PORT_NORTH: PORT_SOUTH,
    PORT_SOUTH: PORT_NORTH,
}


def _mesh_neighbor(k: int, rid: int, port: int) -> Optional[int]:
    """Neighbor router of ``rid`` across ``port``, or None at the edge."""
    x, y = rid % k, rid // k
    if port == PORT_EAST:
        return rid + 1 if x < k - 1 else None
    if port == PORT_WEST:
        return rid - 1 if x > 0 else None
    if port == PORT_NORTH:
        return rid + k if y < k - 1 else None
    if port == PORT_SOUTH:
        return rid - k if y > 0 else None
    return None


def _dor_port(k: int, rid: int, dest_router: int) -> int:
    """X-first DOR output port (mirrors :class:`DORMeshRouting`)."""
    x, y = rid % k, rid // k
    dx, dy = dest_router % k, dest_router // k
    if dx > x:
        return PORT_EAST
    if dx < x:
        return PORT_WEST
    if dy > y:
        return PORT_NORTH
    if dy < y:
        return PORT_SOUTH
    return PORT_TERMINAL


class FTDORMeshRouting(DORMeshRouting):
    """Fault-tolerant DOR on a ``k x k`` mesh with an escape class."""

    def __init__(self, k: int) -> None:
        super().__init__(k)
        self.fault_state: Optional["FaultState"] = None
        self._perm: FrozenSet[Tuple[int, int]] = frozenset()
        #: ``[phase][router][dest] -> output port`` (-1 = unreachable).
        self._esc_port: List[List[List[int]]] = []
        #: ``[phase][router][dest] -> next escape phase``.
        self._esc_phase: List[List[List[int]]] = []
        self._routable: List[List[bool]] = []
        #: (src, dest) router pairs no legal path survives for.
        self.unroutable_pairs: int = 0

    def partition(self, vcs_per_class: int) -> VCPartition:
        """M=2 (request/reply) x R=2 (DOR + escape), one-way 0 -> 1."""
        return VCPartition(
            num_message_classes=2,
            num_resource_classes=2,
            vcs_per_class=vcs_per_class,
            resource_transitions=[[True, True], [False, True]],
        )

    # -- fault binding -----------------------------------------------------
    def bind_fault_state(self, fault_state: Optional["FaultState"], network: "Network") -> None:
        """Learn the permanent link faults and rebuild the detour tables."""
        if fault_state is None:
            self.fault_state = None
            self._perm = frozenset()
            self._esc_port = []
            self._esc_phase = []
            self._routable = []
            self.unroutable_pairs = 0
            return
        self.fault_state = fault_state
        self._perm = fault_state.permanent_link_faults()
        self._build_tables()

    def _build_tables(self) -> None:
        k = self.k
        n = k * k
        perm = self._perm
        # Undirected escape edges: both directions must be healthy.
        adj: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
        for rid in range(n):
            for port in _MESH_LINK_PORTS:
                nbr = _mesh_neighbor(k, rid, port)
                if nbr is None:
                    continue
                if (rid, port) in perm or (nbr, _REVERSE_PORT[port]) in perm:
                    continue
                adj[rid].append((port, nbr))

        # BFS spanning-forest levels, one tree per surviving component,
        # rooted at the component's minimum router id.
        level = [-1] * n
        for root in range(n):
            if level[root] >= 0:
                continue
            level[root] = 0
            queue = deque([root])
            while queue:
                u = queue.popleft()
                for _, v in adj[u]:
                    if level[v] < 0:
                        level[v] = level[u] + 1
                        queue.append(v)

        def is_up(u: int, v: int) -> bool:
            return (level[v], v) < (level[u], u)

        # Per-destination BFS over (router, phase) states.  Phase 0 may
        # still ascend; any down hop enters phase 1 (descend only).
        INF = n * n + 1
        esc_port = [[[-1] * n for _ in range(n)] for _ in range(2)]
        esc_phase = [[[0] * n for _ in range(n)] for _ in range(2)]
        for d in range(n):
            dist = [INF] * (2 * n)
            dist[d] = 0
            dist[n + d] = 0
            queue = deque([d, n + d])
            while queue:
                s = queue.popleft()
                ph, v = divmod(s, n)
                nd = dist[s] + 1
                for port, u in adj[v]:
                    # ``u -> v`` is the forward move; classify it.
                    if is_up(u, v):
                        # Up moves are only legal from phase 0 and land
                        # in phase 0: predecessor state is (u, 0).
                        if ph == 0 and dist[u] > nd:
                            dist[u] = nd
                            queue.append(u)
                    else:
                        # Down moves land in phase 1 from either phase.
                        if ph == 1:
                            if dist[u] > nd:
                                dist[u] = nd
                                queue.append(u)
                            if dist[n + u] > nd:
                                dist[n + u] = nd
                                queue.append(n + u)
            for ph in (0, 1):
                for u in range(n):
                    if u == d:
                        continue
                    du = dist[ph * n + u]
                    if du >= INF:
                        continue
                    best_port = -1
                    best_phase = 0
                    for port, v in sorted(adj[u]):
                        if is_up(u, v):
                            if ph != 0:
                                continue
                            nxt_ph = 0
                        else:
                            nxt_ph = 1
                        if dist[nxt_ph * n + v] == du - 1 and best_port < 0:
                            best_port = port
                            best_phase = nxt_ph
                    esc_port[ph][u][d] = best_port
                    esc_phase[ph][u][d] = best_phase
        self._esc_port = esc_port
        self._esc_phase = esc_phase

        # Exact per-pair deliverability: walk the deterministic class-0
        # DOR path; at the first permanently faulted hop the escape
        # tables must reach the destination from there.
        routable = [[True] * n for _ in range(n)]
        bad = 0
        for s in range(n):
            for d in range(n):
                if s == d:
                    continue
                ok = (d, PORT_TERMINAL) not in perm
                r = s
                while ok and r != d:
                    p = _dor_port(k, r, d)
                    if (r, p) in perm:
                        ok = esc_port[0][r][d] >= 0
                        break
                    nbr = _mesh_neighbor(k, r, p)
                    assert nbr is not None
                    r = nbr
                routable[s][d] = ok
                if not ok:
                    bad += 1
        self._routable = routable
        self.unroutable_pairs = bad

    def routable(self, src_terminal: int, dest_terminal: int) -> bool:
        """Can a packet injected at ``src`` still reach ``dest``?"""
        if not self._routable:
            return True
        # One terminal per router: terminal id == router id.
        return self._routable[src_terminal][dest_terminal]

    # -- routing hooks -----------------------------------------------------
    def prepare(self, network: "Network", terminal: "Terminal", packet: "Packet") -> None:
        packet.resource_class = 0
        packet.escape_phase = 0

    def route(self, network: "Network", router: "Router", packet: "Packet") -> int:
        fs = self.fault_state
        if fs is None:
            return _dor_port(self.k, router.id, packet.dest)
        rid = router.id
        dest_router = packet.dest
        if rid == dest_router:
            return PORT_TERMINAL
        if packet.resource_class == ESCAPE_CLASS:
            ph = packet.escape_phase
            port = self._esc_port[ph][rid][dest_router]
            packet.escape_phase = self._esc_phase[ph][rid][dest_router]
            return port
        port = _dor_port(self.k, rid, dest_router)
        if (rid, port) in self._perm:
            # One-way transition into the reserved escape class.
            packet.resource_class = ESCAPE_CLASS
            packet.misroutes += 1
            fs.counters["escape_reroutes"] += 1
            port = self._esc_port[0][rid][dest_router]
            packet.escape_phase = self._esc_phase[0][rid][dest_router]
        return port


class FTUGALRouting(UGALRouting):
    """UGAL-L with deterministic path repair around permanent faults."""

    def __init__(
        self,
        rows: int = 4,
        cols: int = 4,
        concentration: int = 4,
        threshold: int = 0,
    ) -> None:
        super().__init__(rows, cols, concentration, threshold)
        self.fault_state: Optional["FaultState"] = None
        self._perm: FrozenSet[Tuple[int, int]] = frozenset()
        self._pair_ok: Dict[Tuple[int, int], bool] = {}
        self.unroutable_pairs: int = 0

    # -- fault binding -----------------------------------------------------
    def bind_fault_state(self, fault_state: Optional["FaultState"], network: "Network") -> None:
        if fault_state is None:
            self.fault_state = None
            self._perm = frozenset()
            self._pair_ok = {}
            self.unroutable_pairs = 0
            return
        self.fault_state = fault_state
        self._perm = fault_state.permanent_link_faults()
        n = self.rows * self.cols
        pair_ok: Dict[Tuple[int, int], bool] = {}
        bad = 0
        for s in range(n):
            for d in range(n):
                if s == d:
                    continue
                ok = self._clean_option(s, d) is not None
                pair_ok[(s, d)] = ok
                if not ok:
                    bad += 1
        self._pair_ok = pair_ok
        self.unroutable_pairs = bad

    def _next_router(self, rid: int, port: int) -> int:
        """Invert ``row_port``/``col_port`` (inter-router ports only)."""
        r, c = self._coords(rid)
        i = port - self.concentration
        if i < self.cols - 1:
            others = [x for x in range(self.cols) if x != c]
            return r * self.cols + others[i]
        i -= self.cols - 1
        others = [x for x in range(self.rows) if x != r]
        return others[i] * self.cols + c

    def _leg_clean(self, src_router: int, dst_router: int) -> bool:
        """Is the minimal (row-then-column) leg free of permanent faults?"""
        perm = self._perm
        r = src_router
        while r != dst_router:
            p = self.first_hop_port(r, dst_router, 0)
            if (r, p) in perm:
                return False
            r = self._next_router(r, p)
        return True

    def _clean_option(self, src_router: int, dst_router: int) -> Optional[Tuple[int, Optional[int]]]:
        """First surviving path option: ``(phase, intermediate)``.

        Minimal wins when clean; otherwise the lowest-id strictly
        non-degenerate intermediate with both legs clean.
        """
        if self._leg_clean(src_router, dst_router):
            return (PHASE_MINIMAL, None)
        n = self.rows * self.cols
        for inter in range(n):
            if inter == src_router or inter == dst_router:
                continue
            if self._leg_clean(src_router, inter) and self._leg_clean(inter, dst_router):
                return (PHASE_NONMINIMAL, inter)
        return None

    def routable(self, src_terminal: int, dest_terminal: int) -> bool:
        if not self._pair_ok:
            return True
        d = self.dest_router(dest_terminal)
        if (d, dest_terminal % self.concentration) in self._perm:
            return False  # ejection port itself is dead
        s = self.dest_router(src_terminal)
        if s == d:
            return True
        return self._pair_ok[(s, d)]

    # -- routing hooks -----------------------------------------------------
    def prepare(self, network: "Network", terminal: "Terminal", packet: "Packet") -> None:
        super().prepare(network, terminal, packet)
        fs = self.fault_state
        if fs is None:
            return
        src = terminal.router.id
        dst = self.dest_router(packet.dest)
        if src == dst:
            return
        if packet.resource_class == PHASE_MINIMAL:
            if self._leg_clean(src, dst):
                return
        else:
            inter = packet.intermediate
            assert inter is not None
            if self._leg_clean(src, inter) and self._leg_clean(inter, dst):
                return
        option = self._clean_option(src, dst)
        if option is None:
            # The pair is partitioned; injection-side drops (routable)
            # keep such packets out of the fabric.
            return
        packet.misroutes += 1
        fs.counters["escape_reroutes"] += 1
        packet.resource_class, packet.intermediate = option
