"""Dimension-order routing for the k-ary 2-mesh.

X-first DOR: correct the column, then the row, then eject.  Determinism
makes it compatible with lookahead routing (the upstream router can
always pre-compute the next hop, Section 3.2), and the X-then-Y order
breaks routing-deadlock cycles so a single resource class suffices
(R = 1 in the paper's mesh configurations).

Port convention (see :mod:`repro.netsim.topology.mesh`):
0 = terminal, 1 = +x (east), 2 = -x (west), 3 = +y (north), 4 = -y (south).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..flit import Packet
    from ..network import Network
    from ..router import Router
    from ..traffic import Terminal

__all__ = ["DORMeshRouting", "PORT_TERMINAL", "PORT_EAST", "PORT_WEST", "PORT_NORTH", "PORT_SOUTH"]

PORT_TERMINAL = 0
PORT_EAST = 1
PORT_WEST = 2
PORT_NORTH = 3
PORT_SOUTH = 4


class DORMeshRouting:
    """Deterministic X-then-Y routing on a ``k x k`` mesh."""

    def __init__(self, k: int) -> None:
        self.k = k

    def prepare(self, network: "Network", terminal: "Terminal", packet: "Packet") -> None:
        # Single resource class; nothing to decide at the source.
        packet.resource_class = 0

    def route(self, network: "Network", router: "Router", packet: "Packet") -> int:
        k = self.k
        # One terminal per router: terminal id == router id.
        dest_router = packet.dest
        x, y = router.id % k, router.id // k
        dx, dy = dest_router % k, dest_router // k
        if dx > x:
            return PORT_EAST
        if dx < x:
            return PORT_WEST
        if dy > y:
            return PORT_NORTH
        if dy < y:
            return PORT_SOUTH
        return PORT_TERMINAL

    def hops(self, src_router: int, dest_router: int) -> int:
        """Minimal hop count between two routers (for stats)."""
        k = self.k
        return abs(src_router % k - dest_router % k) + abs(
            src_router // k - dest_router // k
        )
