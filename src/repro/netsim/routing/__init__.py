"""Routing functions for the network simulator.

A routing object provides two hooks:

* ``prepare(network, terminal, packet)`` -- called once per packet at
  injection; fixes source-side decisions (UGAL's minimal/non-minimal
  choice and intermediate router) and the initial resource class.
* ``route(network, router, packet)`` -- called when a head flit is
  written into a router's input buffer (the lookahead-routing model);
  returns the output port and may advance ``packet.resource_class``.
"""

from .dor import DORMeshRouting
from .ft import FTDORMeshRouting, FTUGALRouting
from .ugal import UGALRouting

__all__ = ["DORMeshRouting", "FTDORMeshRouting", "FTUGALRouting", "UGALRouting"]
