"""UGAL routing for the 2-D flattened butterfly (Section 3.2).

UGAL [Singh 2005] chooses per packet, at the source, between the
minimal path and a Valiant-style non-minimal path through a random
intermediate router, comparing locally observable congestion scaled by
hop count: route minimally iff

    q_min * H_min <= q_nonmin * H_nonmin + threshold

where ``q`` is the occupancy of the candidate first-hop output port at
the source router (the credit-based local estimate, UGAL-L) and ``H``
the path hop count.

Two resource classes enforce deadlock freedom (Section 4.2): packets in
the non-minimal phase (class 0) may transition to the minimal phase
(class 1) at their intermediate router but never back -- exactly the
VC transition structure of Figure 4.

Port convention (see :mod:`repro.netsim.topology.fbfly`): ports
``0..conc-1`` are terminals, the next ``cols-1`` ports are row links in
ascending column order, the last ``rows-1`` ports are column links in
ascending row order.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..flit import Packet
    from ..network import Network
    from ..router import Router
    from ..traffic import Terminal

__all__ = ["UGALRouting"]

PHASE_NONMINIMAL = 0
PHASE_MINIMAL = 1


class UGALRouting:
    """UGAL-L on a rows x cols flattened butterfly with concentration."""

    def __init__(
        self,
        rows: int = 4,
        cols: int = 4,
        concentration: int = 4,
        threshold: int = 0,
    ) -> None:
        self.rows = rows
        self.cols = cols
        self.concentration = concentration
        self.threshold = threshold

    # -- helpers ---------------------------------------------------------
    def dest_router(self, terminal_id: int) -> int:
        return terminal_id // self.concentration

    def _coords(self, router_id: int):
        return router_id // self.cols, router_id % self.cols

    def hops(self, src_router: int, dst_router: int) -> int:
        r1, c1 = self._coords(src_router)
        r2, c2 = self._coords(dst_router)
        return (c1 != c2) + (r1 != r2)

    def row_port(self, router_id: int, dest_col: int) -> int:
        """Output port of the row link toward ``dest_col``."""
        _, c = self._coords(router_id)
        if dest_col == c:
            raise ValueError("no row link to own column")
        others = [x for x in range(self.cols) if x != c]
        return self.concentration + others.index(dest_col)

    def col_port(self, router_id: int, dest_row: int) -> int:
        """Output port of the column link toward ``dest_row``."""
        r, _ = self._coords(router_id)
        if dest_row == r:
            raise ValueError("no column link to own row")
        others = [x for x in range(self.rows) if x != r]
        return self.concentration + (self.cols - 1) + others.index(dest_row)

    def first_hop_port(self, router_id: int, target_router: int, dest_terminal: int) -> int:
        """Minimal next hop from ``router_id`` toward ``target_router``."""
        r1, c1 = self._coords(router_id)
        r2, c2 = self._coords(target_router)
        if c1 != c2:
            return self.row_port(router_id, c2)
        if r1 != r2:
            return self.col_port(router_id, r2)
        return dest_terminal % self.concentration

    # -- routing hooks ----------------------------------------------------
    def prepare(self, network: "Network", terminal: "Terminal", packet: "Packet") -> None:
        src_router = terminal.router
        src = src_router.id
        dst = self.dest_router(packet.dest)
        if src == dst:
            packet.resource_class = PHASE_MINIMAL
            packet.intermediate = None
            return

        inter = int(terminal.rng.integers(self.rows * self.cols))
        h_min = self.hops(src, dst)
        h_nonmin = self.hops(src, inter) + self.hops(inter, dst)
        if inter == src or inter == dst or h_nonmin <= h_min:
            # Degenerate intermediate: the non-minimal path is no longer
            # than minimal, so take the minimal route.
            packet.resource_class = PHASE_MINIMAL
            packet.intermediate = None
            return

        q_min = src_router.output_queue_depth(
            self.first_hop_port(src, dst, packet.dest)
        )
        q_nonmin = src_router.output_queue_depth(
            self.first_hop_port(src, inter, packet.dest)
        )
        if q_min * h_min <= q_nonmin * h_nonmin + self.threshold:
            packet.resource_class = PHASE_MINIMAL
            packet.intermediate = None
        else:
            packet.resource_class = PHASE_NONMINIMAL
            packet.intermediate = inter

    def route(self, network: "Network", router: "Router", packet: "Packet") -> int:
        if (
            packet.resource_class == PHASE_NONMINIMAL
            and router.id == packet.intermediate
        ):
            # Phase transition: the packet now routes minimally and may
            # only acquire minimal-phase VCs from here on.
            packet.resource_class = PHASE_MINIMAL
        if packet.resource_class == PHASE_NONMINIMAL:
            target = packet.intermediate
        else:
            target = self.dest_router(packet.dest)
        return self.first_hop_port(router.id, target, packet.dest)
