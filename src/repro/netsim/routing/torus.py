"""Dateline routing for the k-ary 2-cube (torus).

Section 4.2 names "dateline routing in torus networks" as the canonical
example of *resource classes*: the cyclic channel dependency of each
ring is broken by splitting its VCs into a pre-dateline and a
post-dateline class, with packets moving to the post class when they
traverse the ring's wraparound link and never back.

With X-then-Y dimension-order routing this yields four totally ordered
resource classes -- X-pre (0), X-post (1), Y-pre (2), Y-post (3) -- and
an upper-triangular transition matrix: a packet's class only ever
increases (crossing a dateline, or switching from the X ring to the Y
ring).  :meth:`TorusDatelineRouting.partition` builds the matching
:class:`~repro.core.vc_partition.VCPartition`, giving sparse VC
allocation plenty of structure to exploit (only 10 of 16 class
transitions are legal per message class).

Port convention matches the mesh: 0 = terminal, 1 = +x, 2 = -x,
3 = +y, 4 = -y; every port is wired (wraparound links close the rings).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ...core.vc_partition import VCPartition
from .dor import PORT_EAST, PORT_NORTH, PORT_SOUTH, PORT_TERMINAL, PORT_WEST

if TYPE_CHECKING:  # pragma: no cover
    from ..flit import Packet
    from ..network import Network
    from ..router import Router
    from ..traffic import Terminal

__all__ = ["TorusDatelineRouting", "X_PRE", "X_POST", "Y_PRE", "Y_POST"]

X_PRE, X_POST, Y_PRE, Y_POST = 0, 1, 2, 3


class TorusDatelineRouting:
    """Shortest-direction X-then-Y DOR with dateline VC classes."""

    NUM_RESOURCE_CLASSES = 4

    def __init__(self, k: int) -> None:
        if k < 3:
            raise ValueError("torus dateline routing needs k >= 3")
        self.k = k

    @staticmethod
    def partition(vcs_per_class: int = 1) -> VCPartition:
        """Request/reply message classes x 4 dateline resource classes.

        Transitions are the (reflexive) total order X-pre -> X-post ->
        Y-pre -> Y-post: a packet may skip forward (e.g. straight from
        X-pre to Y-post when its first Y hop crosses the Y dateline) but
        never move back.
        """
        transitions = np.triu(np.ones((4, 4), dtype=bool))
        return VCPartition(2, 4, vcs_per_class, transitions)

    # ------------------------------------------------------------------
    def _direction(self, src: int, dst: int):
        """Shortest ring direction: (step, crosses_wrap)."""
        k = self.k
        fwd = (dst - src) % k
        bwd = (src - dst) % k
        if fwd <= bwd:
            return +1, src + fwd >= k  # walking +1 passes the k-1 -> 0 seam
        return -1, src - bwd < 0  # walking -1 passes the 0 -> k-1 seam

    def _next_hop(self, router_id: int, dest_router: int):
        """(port, dimension, crosses_dateline_this_hop) or ejection."""
        k = self.k
        x, y = router_id % k, router_id // k
        dx, dy = dest_router % k, dest_router // k
        if x != dx:
            step, _ = self._direction(x, dx)
            port = PORT_EAST if step > 0 else PORT_WEST
            crosses = (x == k - 1 and step > 0) or (x == 0 and step < 0)
            return port, "x", crosses
        if y != dy:
            step, _ = self._direction(y, dy)
            port = PORT_NORTH if step > 0 else PORT_SOUTH
            crosses = (y == k - 1 and step > 0) or (y == 0 and step < 0)
            return port, "y", crosses
        return PORT_TERMINAL, None, False

    def _next_class(self, current: int, dim, crosses: bool) -> int:
        if dim is None:
            return current  # ejection keeps the class
        if dim == "x":
            needed = X_POST if crosses else X_PRE
        else:
            needed = Y_POST if crosses else Y_PRE
        # Classes only ever increase (the deadlock-freedom invariant).
        return max(current, needed)

    # ------------------------------------------------------------------
    def prepare(self, network: "Network", terminal: "Terminal", packet: "Packet") -> None:
        # The injection VC class is the one the first network channel
        # will need.
        src_router = terminal.router.id
        _, dim, crosses = self._next_hop(src_router, packet.dest)
        packet.resource_class = self._next_class(X_PRE, dim, crosses)

    def route(self, network: "Network", router: "Router", packet: "Packet") -> int:
        port, dim, crosses = self._next_hop(router.id, packet.dest)
        packet.resource_class = self._next_class(
            packet.resource_class, dim, crosses
        )
        return port

    def hops(self, src_router: int, dest_router: int) -> int:
        k = self.k
        dx = abs(src_router % k - dest_router % k)
        dy = abs(src_router // k - dest_router // k)
        return min(dx, k - dx) + min(dy, k - dy)
