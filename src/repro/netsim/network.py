"""Network container: routers, terminals, links and the event loop.

Events (flit deliveries, credit returns) are scheduled at absolute
cycles in a dict-of-lists calendar queue -- cheap because every event
horizon is bounded by the largest link latency (+1 cycle of switch
traversal).

Per cycle:

1. deliver this cycle's flits and credits (buffer writes),
2. terminals generate/serialize traffic,
3. every router runs its allocation step (VA + speculative SA) and
   schedules departures.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from .flit import Flit, Packet
from .router import Router
from .traffic import Terminal

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.observer import SimObserver

__all__ = ["Network"]


class Network:
    """A simulated NoC: routers + terminals + in-flight events."""

    def __init__(self, routing) -> None:
        self.routing = routing
        self.routers: List[Router] = []
        self.terminals: List[Terminal] = []
        self.time = 0
        self._flit_events: Dict[int, List[Tuple[str, object, int, int, Flit]]] = {}
        self._credit_events: Dict[int, List[Tuple[str, object, int, int]]] = {}
        # Delivery hook set by the simulator to collect statistics.
        self.on_delivery: Optional[Callable[[Packet, int], None]] = None
        # Birth hook (fault runs only): called with the birth cycle of
        # every *offered* packet -- including packets dropped as
        # unroutable -- so the simulator can compute the delivered
        # fraction over the measurement window.
        self.on_birth: Optional[Callable[[int], None]] = None
        # Optional repro.obs instrumentation (None = zero overhead).
        self.observer: Optional["SimObserver"] = None
        # Optional repro.faults injection (None = fault-free fast path).
        self.fault_state = None
        # Optional repro.obs phase profiler (None = unprofiled fast path;
        # same null-object idiom as observer/fault_state).
        self.profiler = None
        # True only when the attached fault state schedules credit
        # faults; keeps the per-credit delivery loop on a single local
        # truthiness check otherwise.
        self._credit_faults_armed = False

    def attach_observer(self, observer: Optional["SimObserver"]) -> None:
        """Wire one observer into the network, every router and every
        terminal (pass ``None`` to detach)."""
        self.observer = observer
        for router in self.routers:
            router.observer = observer
            # An observer expects per-cycle stall events; drop any
            # fast-kernel stall latch so the generic path runs again.
            router._alloc_idle = False
        for terminal in self.terminals:
            terminal.observer = observer

    def attach_profiler(self, profiler) -> None:
        """Wire a :class:`repro.obs.profiling.PhaseProfiler` into the
        network and every router (pass ``None`` to detach).

        Compiled routers need no explicit re-specialization: the
        generated step's entry checks ``profiler`` every cycle and
        re-bootstraps into the matching (profiled/unprofiled) variant.
        """
        self.profiler = profiler
        for router in self.routers:
            router.profiler = profiler
            # The profiled network loop marks every allocation segment;
            # drop any fast-kernel stall latch so it runs again.
            router._alloc_idle = False

    def set_kernel(self, kernel: str) -> None:
        """Select the allocation kernel on every router; the registry of
        valid names is :data:`repro.netsim.codegen.KERNELS` ("reference",
        "fast", "compiled"); see :attr:`repro.netsim.router.Router.kernel`."""
        from .codegen import KERNELS

        if kernel not in KERNELS:
            raise ValueError(
                f"unknown simulation kernel {kernel!r}; "
                f"expected one of {', '.join(KERNELS)}"
            )
        for router in self.routers:
            router.kernel = kernel
            router._alloc_idle = False  # latch belongs to the fast kernel

    def attach_fault_state(self, fault_state) -> None:
        """Wire a :class:`repro.faults.FaultState` into the network and
        every router (pass ``None`` to detach).

        Fault-aware routing objects (:mod:`repro.netsim.routing.ft`)
        additionally get the fault state bound so they can precompute
        detour tables, and their ``routable`` predicate is wired into
        every terminal so packets whose (src, dest) pair the faults have
        partitioned are dropped and counted at injection time.
        """
        self.fault_state = fault_state
        self._credit_faults_armed = (
            fault_state is not None and fault_state.has_credit_faults
        )
        for router in self.routers:
            router.attach_fault_state(fault_state)
        bind = getattr(self.routing, "bind_fault_state", None)
        if bind is not None:
            bind(fault_state, self)
            routable = self.routing.routable if fault_state is not None else None
            for terminal in self.terminals:
                terminal.routable_fn = routable

    # ------------------------------------------------------------------
    # event scheduling (called by routers/terminals)
    # ------------------------------------------------------------------
    def schedule_flit(
        self, when: int, kind: str, obj: object, port: int, vc: int, flit: Flit
    ) -> None:
        """Deliver ``flit`` into (obj, port, vc) at cycle ``when``."""
        # get()-then-append instead of setdefault: avoids building a
        # throwaway empty list on every call (this runs once per flit
        # per hop).
        events = self._flit_events.get(when)
        if events is None:
            self._flit_events[when] = [(kind, obj, port, vc, flit)]
        else:
            events.append((kind, obj, port, vc, flit))

    def schedule_credit(
        self, when: int, kind: str, obj: object, port: int, vc: int
    ) -> None:
        events = self._credit_events.get(when)
        if events is None:
            self._credit_events[when] = [(kind, obj, port, vc)]
        else:
            events.append((kind, obj, port, vc))

    def record_delivery(self, packet: Packet, now: int) -> None:
        if self.on_delivery is not None:
            self.on_delivery(packet, now)

    def record_birth(self, birth_time: int) -> None:
        if self.on_birth is not None:
            self.on_birth(birth_time)

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the network by one cycle."""
        prof = self.profiler
        if prof is not None:
            self._step_profiled(prof)
            return
        now = self.time

        for kind, obj, port, vc, flit in self._flit_events.pop(now, ()):
            if kind == "router":
                obj.receive_flit(self, port, vc, flit)
            else:  # terminal ejection
                obj.receive_flit(self, vc, flit, now)
        if self._credit_faults_armed:
            fs = self.fault_state
            assert fs is not None  # armed only while a fault plan is installed
            for kind, obj, port, vc in self._credit_events.pop(now, ()):
                if kind == "router":
                    event = fs.credit_event(obj.id, port, vc, now)
                    if event is not None:
                        if event == "drop":
                            fs.counters["credits_dropped"] += 1
                            continue  # the credit vanishes in transit
                        fs.counters["credits_duplicated"] += 1
                        obj.receive_credit(port, vc)
                    obj.receive_credit(port, vc)
                else:
                    obj.receive_credit(vc)
        else:
            for kind, obj, port, vc in self._credit_events.pop(now, ()):
                if kind == "router":
                    obj.receive_credit(port, vc)
                else:
                    obj.receive_credit(vc)

        for term in self.terminals:
            term.step(self, now)
        for router in self.routers:
            # allocation_step with its guards hoisted: skip empty or
            # latched-idle routers without a call (the idle latch is
            # only ever set by the fast kernel, so reference runs see a
            # plain busy check), and dispatch straight to the selected
            # kernel's step method.
            if router._busy and not router._alloc_idle:
                router._alloc_step(self, now)

        if self.observer is not None:
            self.observer.cycle_end(self, now)
        self.time = now + 1

    def _step_profiled(self, prof) -> None:
        """One cycle with phase attribution -- the same statements as
        :meth:`step` with outer-segment marks between the loop stages.

        ``prof.outer`` charges each segment its elapsed time minus any
        nested phases routers marked inside it (lookahead routing during
        delivery; routing/VC-allocation/link-traversal during the
        allocation sweep), so every second lands in exactly one bucket.
        Kept as a separate method so the unprofiled :meth:`step` pays
        only one attribute load + identity check per cycle.
        """
        now = self.time
        t0 = prof.begin()

        for kind, obj, port, vc, flit in self._flit_events.pop(now, ()):
            if kind == "router":
                obj.receive_flit(self, port, vc, flit)
            else:  # terminal ejection
                obj.receive_flit(self, vc, flit, now)
        t0 = prof.outer("delivery", t0)

        if self._credit_faults_armed:
            fs = self.fault_state
            assert fs is not None  # armed only while a fault plan is installed
            for kind, obj, port, vc in self._credit_events.pop(now, ()):
                if kind == "router":
                    event = fs.credit_event(obj.id, port, vc, now)
                    if event is not None:
                        if event == "drop":
                            fs.counters["credits_dropped"] += 1
                            continue  # the credit vanishes in transit
                        fs.counters["credits_duplicated"] += 1
                        obj.receive_credit(port, vc)
                    obj.receive_credit(port, vc)
                else:
                    obj.receive_credit(vc)
        else:
            for kind, obj, port, vc in self._credit_events.pop(now, ()):
                if kind == "router":
                    obj.receive_credit(port, vc)
                else:
                    obj.receive_credit(vc)
        t0 = prof.outer("event_calendar", t0)

        for term in self.terminals:
            term.step(self, now)
        t0 = prof.outer("traffic", t0)

        for router in self.routers:
            if router._busy and not router._alloc_idle:
                router._alloc_step(self, now)
        t0 = prof.outer("sw_alloc", t0)

        if self.observer is not None:
            self.observer.cycle_end(self, now)
        prof.outer("stats", t0)
        self.time = now + 1

    def run(self, cycles: int) -> None:
        for _ in range(cycles):
            self.step()

    # ------------------------------------------------------------------
    # aggregate statistics
    # ------------------------------------------------------------------
    @property
    def num_terminals(self) -> int:
        return len(self.terminals)

    def total_injected_flits(self) -> int:
        return sum(t.injected_flits for t in self.terminals)

    def total_ejected_flits(self) -> int:
        return sum(t.ejected_flits for t in self.terminals)

    def total_misspeculations(self) -> int:
        return sum(r.misspeculations for r in self.routers)

    def total_speculative_wins(self) -> int:
        return sum(r.speculative_wins for r in self.routers)

    def total_backlog(self) -> int:
        return sum(t.backlog for t in self.terminals)

    def total_switch_grants(self) -> int:
        return sum(r.switch_grants for r in self.routers)

    def stranded_packets(self) -> int:
        """Distinct packets with flits still inside the fabric.

        After the drain phase this is the count of packets that faults
        (or genuine deadlock) left stuck -- the ``packets_lost`` figure
        on :class:`~repro.netsim.simulator.SimulationResult`.  Source
        backlog is excluded: packets never injected are a throughput
        degradation, not a loss.
        """
        pids = set()
        for r in self.routers:
            for port in r.input_vcs:
                for ivc in port:
                    for flit in ivc.queue:
                        pids.add(flit.packet.pid)
        for events in self._flit_events.values():
            for _, _, _, _, flit in events:
                pids.add(flit.packet.pid)
        for t in self.terminals:
            for flit in t._flits:
                pids.add(flit.packet.pid)
        return len(pids)

    def channel_utilization(self) -> Dict[Tuple[int, int], float]:
        """Flits per cycle sent on each router-to-router channel.

        Keyed by ``(router id, output port)``; terminal channels are
        included.  Useful for spotting load imbalance (e.g. the UGAL
        adversarial-traffic studies).
        """
        if self.time == 0:
            return {}
        return {
            (r.id, q): r.port_flits[q] / self.time
            for r in self.routers
            for q in range(r.num_ports)
            if r.out_links[q] is not None
        }

    def in_flight_flits(self) -> int:
        """Flits buffered in routers or on links (drain check)."""
        buffered = sum(
            ivc.occupancy
            for r in self.routers
            for port in r.input_vcs
            for ivc in port
        )
        on_links = sum(len(v) for v in self._flit_events.values())
        sending = sum(len(t._flits) for t in self.terminals)
        return buffered + on_links + sending

    def in_flight_credits(self) -> int:
        """Credits still travelling upstream (drain check).

        A credit is scheduled up to ``2 + link_latency`` cycles after
        the departure that freed the buffer slot, so a network can have
        zero in-flight flits while a credit is still on the wire.  A
        drain check that asserts ``credits == buffer_depth`` must also
        wait for this to reach zero, otherwise the final ejection's
        credit return races the end of the drain window and the check
        misreads an in-transit credit as a leak.
        """
        return sum(len(v) for v in self._credit_events.values())
