"""Metric instruments, the registry, and structured warnings.

The registry follows the Prometheus data model scaled down for a
single-process simulator: an *instrument* is identified by a name plus
a frozen label set (``counter("credit_stalls", router=5)``), lookups
are memoized so hot paths can re-fetch instruments cheaply, and
counters are **cumulative** -- a consumer diffs consecutive samples to
recover per-interval rates.

Samples serialize to JSONL rows (one instrument per line) so time
series can be streamed to disk while a simulation runs and grepped or
loaded with one ``json.loads`` per line afterwards::

    {"kind": "sample", "cycle": 1200, "name": "sa_grants",
     "type": "counter", "labels": {"router": 12}, "value": 841,
     "ctx": {"injection_rate": 0.2}}

Structured warnings give library code a way to report data-quality
problems (e.g. an underfilled batch-means estimate) without printing to
stderr: :func:`emit_warning` fans the warning out to registered sinks
(an active :class:`~repro.obs.observer.SimObserver` writes them into
its metrics JSONL) and keeps a bounded in-memory ring for inspection.
"""

from __future__ import annotations

import logging
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "StructuredWarning",
    "add_warning_sink",
    "remove_warning_sink",
    "emit_warning",
    "recent_warnings",
    "clear_recent_warnings",
]

_log = logging.getLogger("repro.obs")


class Counter:
    """Monotonically increasing cumulative count."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def serialize(self) -> int:
        return self.value


class Gauge:
    """Point-in-time value, overwritten at each sample."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def serialize(self) -> float:
        return self.value


class Histogram:
    """Cumulative histogram with fixed upper-bound buckets.

    ``bounds`` are inclusive upper edges; observations above the last
    bound land in an implicit overflow bucket.  ``counts`` has
    ``len(bounds) + 1`` entries.
    """

    kind = "histogram"
    __slots__ = ("bounds", "counts", "count", "total")

    DEFAULT_BOUNDS: Tuple[float, ...] = (0, 1, 2, 4, 8, 16, 32, 64)

    def __init__(self, bounds: Optional[Sequence[float]] = None) -> None:
        self.bounds: Tuple[float, ...] = tuple(bounds or self.DEFAULT_BOUNDS)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted ascending")
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def serialize(self) -> Dict[str, Any]:
        return {
            "le": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
        }


LabelKey = Tuple[str, Tuple[Tuple[str, Any], ...]]


class MetricsRegistry:
    """Named, labelled instruments with memoized lookup.

    ``counter(name, **labels)`` returns the same object for the same
    (name, labels) pair, so call sites can fetch-and-increment without
    caching instruments themselves (though hot paths may).
    """

    def __init__(self) -> None:
        self._instruments: Dict[LabelKey, Any] = {}

    def __len__(self) -> int:
        return len(self._instruments)

    def _get(self, name: str, labels: Dict[str, Any], factory) -> Any:
        key = (name, tuple(sorted(labels.items())))
        inst = self._instruments.get(key)
        if inst is None:
            inst = factory()
            self._instruments[key] = inst
        return inst

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(name, labels, Counter)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(name, labels, Gauge)

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None, **labels: Any
    ) -> Histogram:
        return self._get(name, labels, lambda: Histogram(bounds))

    # ------------------------------------------------------------------
    def rows(
        self, cycle: int, ctx: Optional[Dict[str, Any]] = None
    ) -> Iterator[Dict[str, Any]]:
        """One JSON-ready sample row per instrument."""
        for (name, labels), inst in self._instruments.items():
            row: Dict[str, Any] = {
                "kind": "sample",
                "cycle": cycle,
                "name": name,
                "type": inst.kind,
                "labels": dict(labels),
                "value": inst.serialize(),
            }
            if ctx:
                row["ctx"] = ctx
            yield row

    def totals(self, name: str) -> Dict[Tuple[Tuple[str, Any], ...], Any]:
        """Current value of every instrument called ``name``, by labels."""
        return {
            labels: inst.serialize()
            for (n, labels), inst in self._instruments.items()
            if n == name
        }

    def total(self, name: str) -> float:
        """Sum of every scalar instrument called ``name`` across labels."""
        return sum(
            inst.value
            for (n, _), inst in self._instruments.items()
            if n == name and hasattr(inst, "value")
        )


# ----------------------------------------------------------------------
# structured warnings
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StructuredWarning:
    """A machine-readable warning emitted by library code."""

    code: str
    message: str
    context: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "warning",
            "code": self.code,
            "message": self.message,
            "context": self.context,
        }


WarningSink = Callable[[StructuredWarning], None]

_sinks: List[WarningSink] = []
_recent: deque = deque(maxlen=256)


def add_warning_sink(sink: WarningSink) -> None:
    """Register a callable invoked for every structured warning."""
    _sinks.append(sink)


def remove_warning_sink(sink: WarningSink) -> None:
    try:
        _sinks.remove(sink)
    except ValueError:
        pass


def emit_warning(code: str, message: str, **context: Any) -> StructuredWarning:
    """Emit a structured warning to all sinks and the recent ring.

    Never raises: a failing sink is logged and skipped so diagnostics
    can't take down a simulation.
    """
    warning = StructuredWarning(code, message, context)
    _recent.append(warning)
    _log.debug("%s: %s %s", code, message, context)
    for sink in list(_sinks):
        try:
            sink(warning)
        except Exception:  # pragma: no cover - defensive
            _log.exception("warning sink failed for %s", code)
    return warning


def recent_warnings() -> List[StructuredWarning]:
    """The most recent structured warnings (bounded ring, oldest first)."""
    return list(_recent)


def clear_recent_warnings() -> None:
    _recent.clear()
