"""Structured sweep telemetry: JSONL reporter, run manifests, report.

Three pieces sit on top of the sweep engine (:mod:`repro.eval.runner`):

* :class:`JsonlReporter` -- a :class:`~repro.eval.runner.SweepReporter`
  that streams one JSON line per event (``sweep_started``, ``point``,
  ``sweep_finished``) with the full config, result summary and progress
  counters, flushed after every point so a killed sweep still leaves a
  usable log.

* :func:`build_run_manifest` / :func:`write_run_manifest` -- a per-run
  provenance record: config hashes, simulator revision, wall time,
  cache statistics and host info.  ``repro sweep`` writes it next to
  the sweep cache (``<cache>.manifest.json``) and, when ``--metrics``
  is given, into the metrics directory as ``manifest.json``.

* :func:`summarize_metrics_dir` -- the ``repro report`` backend: reads
  ``manifest.json`` / ``sweep.jsonl`` / ``metrics.jsonl`` from a
  telemetry directory and renders top stall sources, switch-allocator
  matching efficiency vs. injection rate, latency percentiles and the
  packet-latency breakdown.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import sys
import time
from pathlib import Path
from typing import IO, Any, Dict, Iterable, List, Optional, Sequence, TextIO

from ..eval.runner import SweepReporter, SweepStats, config_key
from ..eval.tables import format_table
from ..netsim.simulator import SIMULATOR_REV, SimulationConfig, SimulationResult

__all__ = [
    "MANIFEST_SCHEMA",
    "EmptyTelemetryError",
    "JsonlReporter",
    "host_info",
    "build_run_manifest",
    "write_run_manifest",
    "read_jsonl",
    "summarize_metrics_dir",
]

MANIFEST_SCHEMA = "repro-run-manifest/1"


class EmptyTelemetryError(ValueError):
    """A telemetry directory exists but holds no recognized artifacts.

    Raised by :func:`summarize_metrics_dir` so callers (``repro
    report``) can exit with a clear message instead of printing an
    empty summary.
    """


class JsonlReporter(SweepReporter):
    """Append-structured sweep progress to a JSONL file or stream.

    Each line is self-contained JSON.  ``point`` rows carry the full
    config (plus its cache key) and the flat result summary, so a sweep
    log can be joined back to the result cache or replayed without the
    original script.
    """

    def __init__(self, path_or_stream: "Path | str | IO[str]") -> None:
        if hasattr(path_or_stream, "write"):
            self.path: Optional[Path] = None
            self._stream: Optional[IO[str]] = path_or_stream  # type: ignore[assignment]
            self._owns_stream = False
        else:
            self.path = Path(path_or_stream)  # type: ignore[arg-type]
            self._stream = None
            self._owns_stream = True

    def _write(self, row: Dict[str, Any], durable: bool = False) -> None:
        if self._stream is None:
            assert self.path is not None
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = self.path.open("w")
        self._stream.write(json.dumps(row) + "\n")
        self._stream.flush()
        if durable and self._owns_stream:
            # Completed point rows must survive a SIGKILL: flush() only
            # reaches the OS page cache, so fsync the file as well.  A
            # killed sweep then loses at most the in-flight row.
            try:
                os.fsync(self._stream.fileno())
            except (OSError, ValueError):
                pass  # stream without a real descriptor (tests, pipes)

    def sweep_started(self, stats: SweepStats) -> None:
        self._write(
            {"kind": "sweep_started", "total": stats.total, "ts": time.time()}
        )

    def point_done(
        self,
        cfg: SimulationConfig,
        result: SimulationResult,
        cached: bool,
        stats: SweepStats,
    ) -> None:
        self._write(
            {
                "kind": "point",
                "key": config_key(cfg),
                "config": cfg.to_dict(),
                "result": result.to_dict(),
                "cached": cached,
                "completed": stats.completed,
                "total": stats.total,
                "cache_hits": stats.cache_hits,
                "elapsed_s": stats.elapsed,
            },
            durable=True,
        )

    def point_failed(self, cfg, failure, stats: SweepStats) -> None:
        self._write(
            {
                "kind": "point_failed",
                "key": config_key(cfg),
                "config": cfg.to_dict(),
                "failure": failure.to_dict(),
                "completed": stats.completed,
                "total": stats.total,
                "elapsed_s": stats.elapsed,
            },
            durable=True,
        )

    def sweep_finished(self, stats: SweepStats) -> None:
        self._write(
            {
                "kind": "sweep_finished",
                "completed": stats.completed,
                "total": stats.total,
                "cache_hits": stats.cache_hits,
                "simulated": stats.simulated,
                "failed": stats.failed,
                "retries": stats.retries,
                "elapsed_s": stats.elapsed,
                "sims_per_sec": stats.sims_per_sec,
                "ts": time.time(),
            }
        )
        self.close()

    def close(self) -> None:
        if self._stream is not None and self._owns_stream:
            self._stream.close()
            self._stream = None


# ----------------------------------------------------------------------
# run manifest
# ----------------------------------------------------------------------
def host_info() -> Dict[str, Any]:
    """Host fingerprint shared by run manifests and the bench-history
    ledger (``repro.eval.bench_history``)."""
    return {
        "hostname": socket.gethostname(),
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
    }


def build_run_manifest(
    configs: Sequence[SimulationConfig],
    *,
    wall_time_s: float,
    stats: Optional[SweepStats] = None,
    cache: Optional[Any] = None,
    command: Optional[Sequence[str]] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Provenance record for one sweep invocation."""
    manifest: Dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "created": time.time(),
        "simulator_rev": SIMULATOR_REV,
        "wall_time_s": wall_time_s,
        "points": {
            "total": len(configs),
            "cached": stats.cache_hits if stats is not None else None,
            "simulated": stats.simulated if stats is not None else None,
            "failed": stats.failed if stats is not None else None,
            "retries": stats.retries if stats is not None else None,
        },
        "config_keys": [config_key(cfg) for cfg in configs],
        "cache": (
            {
                "path": str(cache.path),
                "hits": cache.hits,
                "misses": cache.misses,
                "entries": len(cache),
            }
            if cache is not None
            else None
        ),
        "host": host_info(),
        "command": list(command) if command is not None else None,
    }
    if extra:
        manifest.update(extra)
    return manifest


def write_run_manifest(path: "Path | str", manifest: Dict[str, Any]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, indent=1))
    return path


# ----------------------------------------------------------------------
# `repro report` backend
# ----------------------------------------------------------------------
def read_jsonl(path: "Path | str") -> List[Dict[str, Any]]:
    """Parse a JSONL file, skipping blank lines."""
    rows = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            rows.append(json.loads(line))
    return rows


def _rate_of(row: Dict[str, Any]) -> Optional[float]:
    return row.get("ctx", {}).get("injection_rate")


def _final_counter_totals(
    samples: Iterable[Dict[str, Any]], name: str
) -> Dict[Any, Dict[int, float]]:
    """Last cumulative value of counter ``name`` per (rate, router).

    Rows stream in cycle order, so the last occurrence per key is the
    end-of-run total.  Keyed ``{injection_rate: {router: value}}``.
    """
    out: Dict[Any, Dict[int, float]] = {}
    for row in samples:
        if row.get("name") != name:
            continue
        rate = _rate_of(row)
        router = row.get("labels", {}).get("router", -1)
        out.setdefault(rate, {})[router] = row["value"]
    return out


def summarize_metrics_dir(
    directory: "Path | str", top: int = 5, stream: Optional[TextIO] = None
) -> str:
    """Human-readable summary of a telemetry directory's contents.

    Raises :class:`FileNotFoundError` when ``directory`` does not exist
    (or is not a directory) and :class:`EmptyTelemetryError` when it
    holds none of the expected artifacts, so callers fail loudly instead
    of rendering an empty report.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise FileNotFoundError(
            f"{directory} is not a directory (expected a telemetry "
            "directory written by `repro sweep --metrics DIR`)"
        )
    sections: List[str] = []

    manifest_path = directory / "manifest.json"
    if manifest_path.exists():
        m = json.loads(manifest_path.read_text())
        host = m.get("host", {})
        pts = m.get("points", {})
        sections.append(
            f"run manifest: {pts.get('total')} point(s) "
            f"({pts.get('cached')} cached, {pts.get('simulated')} simulated), "
            f"sim rev {m.get('simulator_rev')}, "
            f"{m.get('wall_time_s', 0.0):.1f}s wall on "
            f"{host.get('hostname', '?')} "
            f"(python {host.get('python', '?')}, "
            f"{host.get('cpu_count', '?')} cpus)"
        )

    sweep_path = directory / "sweep.jsonl"
    if sweep_path.exists():
        points = [r for r in read_jsonl(sweep_path) if r.get("kind") == "point"]
        if points:
            rows = []
            for r in points:
                res = r.get("result", {})
                rows.append(
                    [
                        res.get("injection_rate"),
                        res.get("avg_latency"),
                        res.get("p50"),
                        res.get("p95"),
                        res.get("p99"),
                        "sat" if res.get("saturated") else "",
                        "cache" if r.get("cached") else "sim",
                    ]
                )
            sections.append(
                format_table(
                    ["inj rate", "latency", "p50", "p95", "p99", "", "source"],
                    rows,
                    title="sweep points (sweep.jsonl)",
                )
            )

    metrics_path = directory / "metrics.jsonl"
    if metrics_path.exists():
        rows_all = read_jsonl(metrics_path)
        samples = [r for r in rows_all if r.get("kind") == "sample"]
        warnings = [r for r in rows_all if r.get("kind") == "warning"]
        breakdowns = [r for r in rows_all if r.get("kind") == "breakdown"]

        # Switch-allocator matching efficiency vs injection rate:
        # grants over requests, summed across routers, end-of-run.
        grants = _final_counter_totals(samples, "sa_grants")
        req_ns = _final_counter_totals(samples, "sa_requests_nonspec")
        req_sp = _final_counter_totals(samples, "sa_requests_spec")
        stalls = _final_counter_totals(samples, "credit_stalls")
        if grants:
            eff_rows = []
            for rate in sorted(grants, key=lambda r: (r is None, r)):
                g = sum(grants.get(rate, {}).values())
                rq = sum(req_ns.get(rate, {}).values()) + sum(
                    req_sp.get(rate, {}).values()
                )
                st = sum(stalls.get(rate, {}).values())
                eff_rows.append(
                    [rate, int(rq), int(g), (g / rq) if rq else None, int(st)]
                )
            sections.append(
                format_table(
                    ["inj rate", "SA requests", "SA grants", "efficiency",
                     "credit stalls"],
                    eff_rows,
                    title="switch-allocator matching efficiency (metrics.jsonl)",
                )
            )

        # Top stall sources across the whole run, by router.
        per_router: Dict[int, float] = {}
        for by_router in stalls.values():
            for router, value in by_router.items():
                per_router[router] = per_router.get(router, 0) + value
        starved = _final_counter_totals(samples, "vc_starved")
        starved_by_router: Dict[int, float] = {}
        for by_router in starved.values():
            for router, value in by_router.items():
                starved_by_router[router] = (
                    starved_by_router.get(router, 0) + value
                )
        if per_router:
            worst = sorted(
                per_router.items(), key=lambda kv: kv[1], reverse=True
            )[:top]
            sections.append(
                format_table(
                    ["router", "credit stalls", "vc starved"],
                    [
                        [rid, int(n), int(starved_by_router.get(rid, 0))]
                        for rid, n in worst
                    ],
                    title=f"top {len(worst)} stall sources",
                )
            )

        if breakdowns:
            rows = []
            for b in breakdowns:
                v = b.get("value", {})
                rows.append(
                    [
                        _rate_of(b),
                        v.get("packets"),
                        v.get("avg_total"),
                        v.get("avg_source_queue"),
                        v.get("avg_va_wait"),
                        v.get("avg_sa_wait"),
                        v.get("avg_traversal"),
                    ]
                )
            sections.append(
                format_table(
                    ["inj rate", "packets", "total", "src queue", "va wait",
                     "sa wait", "traversal"],
                    rows,
                    title="packet latency breakdown (cycles)",
                )
            )

        if warnings:
            counts: Dict[str, int] = {}
            for w in warnings:
                counts[w.get("code", "?")] = counts.get(w.get("code", "?"), 0) + 1
            sections.append(
                format_table(
                    ["warning code", "count"],
                    sorted(counts.items()),
                    title="structured warnings",
                )
            )

    if not sections:
        raise EmptyTelemetryError(
            f"no telemetry found under {directory}: expected "
            "manifest.json, sweep.jsonl or metrics.jsonl "
            "(written by `repro sweep --metrics DIR`)"
        )
    text = "\n\n".join(sections)
    if stream is not None:
        print(text, file=stream)
    return text
