"""Phase-attribution profiler for the per-cycle simulator loop.

A :class:`PhaseProfiler` attaches to a network the same way an observer
or a fault state does: every hook site in ``repro.netsim`` is one
attribute load plus an identity check when profiling is off (the
``profiler is None`` fast path ``repro lint --source`` enforces), so
no-profiler runs stay bit-identical and ``SIMULATOR_REV`` is untouched.
All wall-clock reads live here -- the simulation packages only call
methods on the attached profiler object, which keeps them clean under
the SRC-WALL-CLOCK lint rule.

Attribution model
-----------------
The network's cycle loop is split into sequential *outer* segments
(delivery, event calendar, traffic, switch allocation, stats).  Inside
an outer segment, routers mark *nested* phases (routing, VC allocation,
link traversal); the profiler subtracts nested time from the enclosing
outer segment so every second is attributed exactly once:

======================  ==================================================
phase                   what it measures
======================  ==================================================
``setup``               network construction + fault materialization
``delivery``            flit-event pop + buffer writes (minus lookahead
                        routing done inside ``receive_flit``)
``event_calendar``      credit-event processing
``traffic``             traffic generation / source serialization
``routing``             ``route_fn`` calls (lookahead and pipelined)
``vc_alloc``            VC allocator cores
``sw_alloc``            allocation-step remainder: request scan, switch
                        allocation, grant commit
``link_traversal``      departures: crossbar/link event scheduling,
                        credit return, speculation commit
``stats``               per-cycle observer sampling + end-of-run stats
======================  ==================================================
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

__all__ = [
    "PROFILE_SCHEMA",
    "PHASES",
    "PhaseProfiler",
    "profile_point",
]

PROFILE_SCHEMA = "repro/phase-profile/v1"

#: Fixed phase taxonomy; every profile report's ``phases`` keys are a
#: subset of this tuple (validated by ``scripts/validate_telemetry.py``).
PHASES = (
    "setup",
    "delivery",
    "event_calendar",
    "traffic",
    "routing",
    "vc_alloc",
    "sw_alloc",
    "link_traversal",
    "stats",
)


class PhaseProfiler:
    """Accumulates wall time per simulation phase.

    The three attribution entry points differ in how they interact with
    the nested-time accumulator:

    - :meth:`direct` -- attribute ``now - t0`` to a phase; used outside
      the cycle loop (setup, end-of-run stats) where nesting cannot
      occur.
    - :meth:`phase` -- attribute ``now - t0`` *and* add it to the
      nested accumulator; used by routers for sub-phases that run
      inside an outer segment.
    - :meth:`outer` -- attribute ``(now - t0) - nested`` and reset the
      nested accumulator; used by the network for the sequential
      cycle-loop segments so nested time is not double counted.

    All three return ``now`` so callers can chain segments without an
    extra clock read.
    """

    __slots__ = ("totals", "nested", "_clock")

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock = clock if clock is not None else time.perf_counter
        self.totals: Dict[str, float] = {name: 0.0 for name in PHASES}
        self.nested = 0.0

    # -- hot-path API (called from repro.netsim hook sites) ------------
    def begin(self) -> float:
        """Return the current clock reading (a phase start mark)."""
        return self._clock()

    def direct(self, name: str, t0: float) -> float:
        now = self._clock()
        self.totals[name] += now - t0
        return now

    def phase(self, name: str, t0: float) -> float:
        now = self._clock()
        dt = now - t0
        self.totals[name] += dt
        self.nested += dt
        return now

    def outer(self, name: str, t0: float) -> float:
        now = self._clock()
        self.totals[name] += (now - t0) - self.nested
        self.nested = 0.0
        return now

    # -- reporting ------------------------------------------------------
    def total(self) -> float:
        return sum(self.totals.values())

    def snapshot(self) -> Dict[str, float]:
        """Per-phase seconds, zero phases dropped, rounded for JSON."""
        return {
            name: round(secs, 6) for name, secs in self.totals.items() if secs > 0.0
        }

    def report(self, wall_s: float) -> Dict[str, object]:
        """Schema'd profile record against a measured wall time."""
        attributed = self.total()
        return {
            "schema": PROFILE_SCHEMA,
            "wall_s": round(wall_s, 6),
            "phases": self.snapshot(),
            "coverage": round(attributed / wall_s, 4) if wall_s > 0 else 0.0,
        }


def profile_point(cfg, kernel: str = "fast") -> Dict[str, object]:
    """Run one simulation with a profiler attached and return the
    phase breakdown as a :data:`PROFILE_SCHEMA` record.

    The profiled run is separate from any timing run -- profiling adds
    per-phase clock reads, so callers that also want clean wall-time
    numbers (``repro bench --profile``) time unprofiled runs and use
    this only for attribution.
    """
    from ..netsim.simulator import run_simulation

    profiler = PhaseProfiler()
    t0 = time.perf_counter()
    run_simulation(cfg, kernel=kernel, profiler=profiler)
    wall = time.perf_counter() - t0
    return profiler.report(wall)
