"""The observer object the simulator's instrumentation hooks call.

:class:`SimObserver` is opt-in: ``Network``, ``Router`` and
``Terminal`` each carry an ``observer`` attribute that defaults to
``None``, and every hook site in the simulator is guarded by a single
``observer is None`` check -- the null-object fast path that keeps the
uninstrumented hot loop unchanged.  When attached
(``run_simulation(cfg, observer=...)`` or
``network.attach_observer(...)``), the observer:

* maintains per-router instruments in a fresh
  :class:`~repro.obs.metrics.MetricsRegistry` per run -- VC/switch
  allocation requests vs. grants (per-cycle matching efficiency),
  speculative wins/kills, credit stalls, VC starvation, buffer
  occupancy gauges and per-VC occupancy histograms;
* samples the registry every ``sample_every`` cycles into a JSONL time
  series (``metrics.jsonl``), each row tagged with the run context
  (injection rate, topology, seed, ...);
* forwards head-flit lifecycle events to a
  :class:`~repro.obs.tracing.FlitTracer` for Chrome-trace export;
* acts as a sink for :func:`~repro.obs.metrics.emit_warning`, so
  structured warnings raised anywhere in the library land in the same
  JSONL stream as the metrics.

Determinism: the observer only *reads* simulator state and never draws
from any RNG, so an instrumented run produces bit-identical
``SimulationResult`` numbers to an uninstrumented one (pinned by
``tests/obs/test_observer.py``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Any, Dict, List, Optional

from .metrics import (
    MetricsRegistry,
    StructuredWarning,
    add_warning_sink,
    remove_warning_sink,
)
from .tracing import FlitTracer, LatencyBreakdown

__all__ = ["SimObserver", "NullObserver"]


class _RouterInstruments:
    """Cached per-router instrument handles (hot-path lookup killer)."""

    __slots__ = (
        "credit_stalls",
        "vc_starved",
        "va_requests",
        "va_grants",
        "sa_requests_nonspec",
        "sa_requests_spec",
        "sa_grants",
        "sa_spec_wins",
        "sa_spec_kills",
        "occupancy",
        "peak_occupancy",
        "vc_occupancy",
    )

    def __init__(self, registry: MetricsRegistry, router_id: int) -> None:
        self.credit_stalls = registry.counter("credit_stalls", router=router_id)
        self.vc_starved = registry.counter("vc_starved", router=router_id)
        self.va_requests = registry.counter("va_requests", router=router_id)
        self.va_grants = registry.counter("va_grants", router=router_id)
        self.sa_requests_nonspec = registry.counter(
            "sa_requests_nonspec", router=router_id
        )
        self.sa_requests_spec = registry.counter("sa_requests_spec", router=router_id)
        self.sa_grants = registry.counter("sa_grants", router=router_id)
        self.sa_spec_wins = registry.counter("sa_spec_wins", router=router_id)
        self.sa_spec_kills = registry.counter("sa_spec_kills", router=router_id)
        self.occupancy = registry.gauge("buffer_occupancy", router=router_id)
        self.peak_occupancy = registry.gauge("peak_vc_occupancy", router=router_id)
        self.vc_occupancy = registry.histogram("vc_occupancy", router=router_id)


class SimObserver:
    """Collect metrics and flit traces from an instrumented simulation."""

    def __init__(
        self,
        metrics_path: Optional["Path | str"] = None,
        trace_path: Optional["Path | str"] = None,
        sample_every: int = 100,
        tracer: Optional[FlitTracer] = None,
    ) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sample_every = sample_every
        self.metrics_path = Path(metrics_path) if metrics_path is not None else None
        self.trace_path = Path(trace_path) if trace_path is not None else None
        self.tracer: Optional[FlitTracer] = tracer or (
            FlitTracer() if trace_path is not None else None
        )
        self.registry = MetricsRegistry()
        #: In-memory rows, populated only when no ``metrics_path`` is set
        #: (programmatic / test use); file-backed runs stream to disk.
        self.rows: List[Dict[str, Any]] = []
        self._routers: Dict[int, _RouterInstruments] = {}
        self._ctx: Dict[str, Any] = {}
        self._stream: Optional[IO[str]] = None
        self._closed = False
        self._bd_mark = LatencyBreakdown()
        self._c_injected = self.registry.counter("packets_injected")
        self._c_ejected = self.registry.counter("packets_ejected")
        add_warning_sink(self._on_warning)

    # ------------------------------------------------------------------
    # run lifecycle
    # ------------------------------------------------------------------
    def run_started(self, cfg: Any) -> None:
        """Begin a new simulation point: fresh registry, new context."""
        self._ctx = {
            "topology": cfg.topology,
            "injection_rate": cfg.injection_rate,
            "sw_alloc_arch": cfg.sw_alloc_arch,
            "speculation": cfg.speculation,
            "seed": cfg.seed,
        }
        self.registry = MetricsRegistry()
        self._routers = {}
        self._c_injected = self.registry.counter("packets_injected")
        self._c_ejected = self.registry.counter("packets_ejected")
        if self.tracer is not None:
            self._bd_mark = LatencyBreakdown(**vars(self.tracer.breakdown))
        self._write_row({"kind": "run_started", "ctx": dict(self._ctx)})

    def run_finished(self, network: Any, cfg: Any) -> None:
        """Final sample at the end of a run (so cumulative counters are
        complete even when the run length is not a sampling multiple)."""
        self.sample(network, network.time)
        fault_state = getattr(network, "fault_state", None)
        if fault_state is not None:
            self._write_row(
                {
                    "kind": "fault_counters",
                    "cycle": network.time,
                    "ctx": dict(self._ctx),
                    "value": fault_state.summary(),
                }
            )
        if self.tracer is not None:
            delta = LatencyBreakdown(
                **{
                    k: getattr(self.tracer.breakdown, k) - getattr(self._bd_mark, k)
                    for k in vars(self._bd_mark)
                }
            )
            self._write_row(
                {
                    "kind": "breakdown",
                    "cycle": network.time,
                    "ctx": dict(self._ctx),
                    "value": delta.to_dict(),
                }
            )
            # Later runs restart their cycle counter at 0; shift their
            # trace timestamps past this run so tracks never overlap.
            self.tracer.ts_offset += network.time + 1

    # ------------------------------------------------------------------
    # simulator hooks (every call site is behind ``observer is None``)
    # ------------------------------------------------------------------
    def _router(self, router_id: int) -> _RouterInstruments:
        inst = self._routers.get(router_id)
        if inst is None:
            inst = _RouterInstruments(self.registry, router_id)
            self._routers[router_id] = inst
        return inst

    def credit_stall(self, router_id: int, out_port: int, out_vc: int) -> None:
        """An active VC held the crossbar request back: zero credits."""
        self._router(router_id).credit_stalls.inc()

    def vc_starved(self, router_id: int, out_port: int) -> None:
        """A routed head flit found no free legal output VC to request."""
        self._router(router_id).vc_starved.inc()

    def alloc_cycle(
        self,
        router_id: int,
        now: int,
        va_requests: int,
        va_grants: int,
        sa_nonspec_requests: int,
        sa_spec_requests: int,
        sa_nonspec_grants: int,
        sa_spec_wins: int,
        sa_spec_kills: int,
    ) -> None:
        """Per-cycle allocator request/grant tallies from one router."""
        inst = self._router(router_id)
        inst.va_requests.inc(va_requests)
        inst.va_grants.inc(va_grants)
        inst.sa_requests_nonspec.inc(sa_nonspec_requests)
        inst.sa_requests_spec.inc(sa_spec_requests)
        inst.sa_grants.inc(sa_nonspec_grants + sa_spec_wins)
        inst.sa_spec_wins.inc(sa_spec_wins)
        inst.sa_spec_kills.inc(sa_spec_kills)

    def flit_arrived(
        self, router_id: int, port: int, vc: int, flit: Any, now: int
    ) -> None:
        if self.tracer is not None and flit.is_head:
            self.tracer.head_arrived(router_id, port, vc, flit.packet, now)

    def vc_granted(self, router_id: int, port: int, vc: int, flit: Any, now: int) -> None:
        if self.tracer is not None:
            self.tracer.vc_granted(router_id, flit.packet, now)

    def flit_departed(
        self,
        router_id: int,
        port: int,
        vc: int,
        out_port: int,
        out_vc: int,
        flit: Any,
        now: int,
    ) -> None:
        if self.tracer is not None and flit.is_head:
            self.tracer.head_departed(router_id, flit.packet, now)

    def packet_injected(self, terminal_id: int, packet: Any, now: int) -> None:
        self._c_injected.inc()
        if self.tracer is not None:
            self.tracer.packet_injected(terminal_id, packet, now)

    def packet_ejected(self, terminal_id: int, packet: Any, now: int) -> None:
        self._c_ejected.inc()
        if self.tracer is not None:
            self.tracer.packet_ejected(terminal_id, packet, now)

    def cycle_end(self, network: Any, now: int) -> None:
        if now % self.sample_every == 0 and now > 0:
            self.sample(network, now)

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def sample(self, network: Any, cycle: int) -> None:
        """Refresh occupancy gauges and emit one row per instrument."""
        for router in network.routers:
            inst = self._router(router.id)
            total = 0
            peak = 0
            hist = inst.vc_occupancy
            for port_vcs in router.input_vcs:
                for ivc in port_vcs:
                    occ = len(ivc.queue)
                    total += occ
                    if ivc.high_water > peak:
                        peak = ivc.high_water
                    hist.observe(occ)
            inst.occupancy.set(total)
            inst.peak_occupancy.set(peak)
        for row in self.registry.rows(cycle, self._ctx):
            self._write_row(row)
        if self._stream is not None:
            self._stream.flush()

    # ------------------------------------------------------------------
    # output plumbing
    # ------------------------------------------------------------------
    def _write_row(self, row: Dict[str, Any]) -> None:
        if self._closed:
            return
        if self.metrics_path is None:
            self.rows.append(row)
            return
        if self._stream is None:
            self.metrics_path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = self.metrics_path.open("w")
        self._stream.write(json.dumps(row) + "\n")

    def _on_warning(self, warning: StructuredWarning) -> None:
        row = warning.to_dict()
        if self._ctx:
            row["ctx"] = dict(self._ctx)
        self._write_row(row)

    def finalize(self, metadata: Optional[Dict[str, Any]] = None) -> None:
        """Flush/close the metrics stream and export the trace file."""
        if self._closed:
            return
        if self.tracer is not None and self.trace_path is not None:
            self.tracer.export(self.trace_path, metadata)
        if self._stream is not None:
            self._stream.flush()
            self._stream.close()
            self._stream = None
        remove_warning_sink(self._on_warning)
        self._closed = True

    close = finalize

    def __enter__(self) -> "SimObserver":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.finalize()


class NullObserver(SimObserver):
    """All hooks are no-ops; for call sites that want an always-valid
    observer object instead of the ``None`` fast path."""

    def __init__(self) -> None:  # no files, no tracer, no warning sink
        super().__init__()
        remove_warning_sink(self._on_warning)

    def run_started(self, cfg: Any) -> None:
        pass

    def run_finished(self, network: Any, cfg: Any) -> None:
        pass

    def credit_stall(self, *a: Any, **k: Any) -> None:
        pass

    def vc_starved(self, *a: Any, **k: Any) -> None:
        pass

    def alloc_cycle(self, *a: Any, **k: Any) -> None:
        pass

    def flit_arrived(self, *a: Any, **k: Any) -> None:
        pass

    def vc_granted(self, *a: Any, **k: Any) -> None:
        pass

    def flit_departed(self, *a: Any, **k: Any) -> None:
        pass

    def packet_injected(self, *a: Any, **k: Any) -> None:
        pass

    def packet_ejected(self, *a: Any, **k: Any) -> None:
        pass

    def cycle_end(self, *a: Any, **k: Any) -> None:
        pass
