"""Self-contained HTML performance dashboard (``repro perf report``).

Aggregates the repo's performance artifacts into one static page:

* the latest bench report (``BENCH_kernel.json``) -- warm throughput per
  kernel and, when the run was profiled, a phase-stacked bar per kernel
  showing where the wall time went;
* the bench-history ledger (``benchmarks/results/BENCH_history.jsonl``)
  -- speedup trajectory across recorded runs, fingerprinted by git SHA;
* a sweep telemetry directory (``repro sweep --metrics DIR``) -- point
  table with latency percentiles, cache hit rate and fault counters;
* a resilience artifact (``repro resilience --output FILE``) --
  degradation curves (delivered fraction vs faulted links) per routing
  mode, rendered as per-point bars (docs/ROBUSTNESS.md).

The output embeds all styling inline and draws charts with plain
HTML/CSS bars and inline SVG -- no JavaScript, no external assets -- so
the file renders identically as a CI artifact, over ``file://`` or in
an air-gapped review environment.

Every input is optional: missing artifacts render as a note rather than
an error.  Only when *no* input exists does :func:`build_perf_report`
raise ``FileNotFoundError`` (the CLI maps it to exit code 2).
"""

from __future__ import annotations

import html
import json
from pathlib import Path
from typing import Any, Dict, List, Optional

from .profiling import PHASES

__all__ = ["build_perf_report"]

#: Fixed per-phase palette so the same phase has the same color in every
#: chart (and across report generations).
_PHASE_COLORS = {
    "setup": "#9e9e9e",
    "delivery": "#8e6fb8",
    "event_calendar": "#5d9cec",
    "traffic": "#48b0a0",
    "routing": "#f0a04b",
    "vc_alloc": "#d9534f",
    "sw_alloc": "#c9a227",
    "link_traversal": "#5cb85c",
    "stats": "#777777",
}

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2em auto;
       max-width: 70em; color: #222; }
h1 { font-size: 1.5em; } h2 { font-size: 1.15em; margin-top: 2em;
     border-bottom: 1px solid #ddd; padding-bottom: .25em; }
table { border-collapse: collapse; font-size: .9em; }
th, td { padding: .3em .8em; text-align: right; border-bottom: 1px solid #eee; }
th { background: #f7f7f7; } td:first-child, th:first-child { text-align: left; }
.bar { display: flex; height: 1.4em; width: 34em; max-width: 100%;
       border-radius: 3px; overflow: hidden; background: #f0f0f0; }
.bar span { display: block; height: 100%; }
.legend span { display: inline-block; margin-right: 1em; font-size: .85em; }
.legend i { display: inline-block; width: .8em; height: .8em;
            margin-right: .3em; border-radius: 2px; vertical-align: -1px; }
.note { color: #888; font-style: italic; }
.fingerprint { color: #888; font-size: .8em; font-family: monospace; }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value))


def _phase_bar(phases: Dict[str, float]) -> str:
    """One horizontal stacked bar; segment width = share of the total."""
    total = sum(phases.values())
    if total <= 0:
        return '<div class="note">no phase data</div>'
    cells = []
    for name in PHASES:
        secs = phases.get(name, 0.0)
        if secs <= 0:
            continue
        share = secs / total
        cells.append(
            f'<span style="width:{share * 100:.2f}%;'
            f'background:{_PHASE_COLORS.get(name, "#bbb")}" '
            f'title="{_esc(name)}: {secs:.3f}s ({share:.1%})"></span>'
        )
    return f'<div class="bar">{"".join(cells)}</div>'


def _phase_legend() -> str:
    items = "".join(
        f'<span><i style="background:{color}"></i>{_esc(name)}</span>'
        for name, color in _PHASE_COLORS.items()
    )
    return f'<div class="legend">{items}</div>'


def _sparkline(values: List[float], width: int = 240, height: int = 48) -> str:
    """Inline SVG polyline across the ledger records (oldest first)."""
    if len(values) < 2:
        return '<span class="note">needs &ge;2 records</span>'
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    pad = 4
    step = (width - 2 * pad) / (len(values) - 1)
    pts = " ".join(
        f"{pad + i * step:.1f},"
        f"{height - pad - (v - lo) / span * (height - 2 * pad):.1f}"
        for i, v in enumerate(values)
    )
    return (
        f'<svg width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">'
        f'<polyline points="{pts}" fill="none" stroke="#5d9cec" '
        'stroke-width="2"/></svg>'
    )


# ----------------------------------------------------------------------
# sections
# ----------------------------------------------------------------------
def _bench_section(report: Dict[str, Any], source: Path) -> str:
    rows = []
    for p in report.get("points", []):
        cells = [f"<td>{_esc(p['label'])}</td>"]
        for kernel in ("fast", "reference", "compiled"):
            if kernel in p:
                cells.append(
                    f"<td>{p[kernel]['warm_cycles_per_s']:,.0f}</td>"
                )
            else:
                cells.append("<td>-</td>")
        for key in ("speedup_warm", "speedup_warm_compiled"):
            cells.append(
                f"<td>{p[key]:.2f}&times;</td>" if key in p else "<td>-</td>"
            )
        rows.append("<tr>" + "".join(cells) + "</tr>")
    table = (
        "<table><tr><th>point</th><th>fast cyc/s</th><th>ref cyc/s</th>"
        "<th>compiled cyc/s</th><th>fast vs ref</th>"
        "<th>compiled vs fast</th></tr>" + "".join(rows) + "</table>"
    )
    profile_html = ""
    profiled = [p for p in report.get("points", []) if p.get("profile")]
    if profiled:
        blocks = [_phase_legend()]
        for p in profiled:
            bars = []
            for kernel in ("reference", "fast", "compiled"):
                prof = p["profile"].get(kernel)
                if not prof:
                    continue
                bars.append(
                    f"<tr><td>{_esc(kernel)}</td>"
                    f"<td>{_phase_bar(prof.get('phases', {}))}</td>"
                    f"<td>{prof.get('wall_s', 0.0):.2f}s</td>"
                    f"<td>{prof.get('coverage', 0.0):.1%}</td></tr>"
                )
            blocks.append(
                f"<h3>{_esc(p['label'])}</h3>"
                "<table><tr><th>kernel</th><th>phase breakdown</th>"
                "<th>wall</th><th>coverage</th></tr>"
                + "".join(bars) + "</table>"
            )
        profile_html = "<h2>Phase breakdown</h2>" + "".join(blocks)
    else:
        profile_html = (
            '<h2>Phase breakdown</h2><p class="note">no profile data in '
            "this report &mdash; rerun with <code>repro bench "
            "--profile</code>.</p>"
        )
    return (
        f"<h2>Kernel benchmark</h2>"
        f'<p class="fingerprint">source: {_esc(source)} '
        f"(simulator rev {_esc(report.get('simulator_rev'))}, "
        f"{'quick' if report.get('quick') else 'full'} matrix)</p>"
        + table + profile_html
    )


def _history_section(records: List[Dict[str, Any]], source: Path) -> str:
    # Trajectory of the headline ratios per point label across records.
    series: Dict[str, Dict[str, List[float]]] = {}
    for rec in records:
        for p in rec.get("points", []):
            slot = series.setdefault(
                p["label"], {"speedup_warm": [], "speedup_warm_compiled": []}
            )
            for key in slot:
                if key in p:
                    slot[key].append(p[key])
    rows = []
    for label in sorted(series):
        for key, name in (
            ("speedup_warm", "fast vs ref"),
            ("speedup_warm_compiled", "compiled vs fast"),
        ):
            values = series[label][key]
            if not values:
                continue
            rows.append(
                f"<tr><td>{_esc(label)}</td><td>{_esc(name)}</td>"
                f"<td>{values[-1]:.2f}&times;</td>"
                f"<td>{_sparkline(values)}</td></tr>"
            )
    fingerprints = []
    for rec in records[-10:]:
        git = rec.get("git") or {}
        sha = (git.get("sha") or "?")[:12]
        dirty = "+dirty" if git.get("dirty") else ""
        fingerprints.append(
            f"{sha}{dirty} (rev {rec.get('simulator_rev')}, "
            f"{'quick' if rec.get('quick') else 'full'})"
        )
    return (
        f"<h2>Bench history ({len(records)} record(s))</h2>"
        f'<p class="fingerprint">source: {_esc(source)}</p>'
        "<table><tr><th>point</th><th>ratio</th><th>latest</th>"
        "<th>trajectory</th></tr>" + "".join(rows) + "</table>"
        f'<p class="fingerprint">recent runs: '
        f'{_esc(" &larr; ".join(reversed(fingerprints)))}</p>'
    )


def _metrics_section(metrics_dir: Path) -> str:
    from .telemetry import read_jsonl

    parts: List[str] = [f"<h2>Sweep telemetry</h2>"
                        f'<p class="fingerprint">source: {_esc(metrics_dir)}/'
                        "</p>"]
    sweep_path = metrics_dir / "sweep.jsonl"
    if sweep_path.exists():
        rows_all = read_jsonl(sweep_path)
        points = [r for r in rows_all if r.get("kind") == "point"]
        failed = [r for r in rows_all if r.get("kind") == "point_failed"]
        if points:
            cached = sum(1 for r in points if r.get("cached"))
            body = []
            for r in points:
                res = r.get("result", {})
                body.append(
                    f"<tr><td>{res.get('injection_rate')}</td>"
                    f"<td>{res.get('avg_latency')}</td>"
                    f"<td>{res.get('p50')}</td><td>{res.get('p95')}</td>"
                    f"<td>{res.get('p99')}</td>"
                    f"<td>{'cache' if r.get('cached') else 'sim'}</td></tr>"
                )
            parts.append(
                "<table><tr><th>inj rate</th><th>latency</th><th>p50</th>"
                "<th>p95</th><th>p99</th><th>source</th></tr>"
                + "".join(body) + "</table>"
                f"<p>{len(points)} point(s), cache hit rate "
                f"{cached / len(points):.0%}"
                + (f", <b>{len(failed)} failed</b>" if failed else "")
                + "</p>"
            )
    metrics_path = metrics_dir / "metrics.jsonl"
    if metrics_path.exists():
        rows_all = read_jsonl(metrics_path)
        fault_rows = [
            r for r in rows_all if r.get("kind") == "fault_counters"
        ]
        if fault_rows:
            totals: Dict[str, float] = {}
            for r in fault_rows:
                for name, value in (r.get("value") or {}).items():
                    if isinstance(value, (int, float)):
                        totals[name] = totals.get(name, 0) + value
            body = "".join(
                f"<tr><td>{_esc(name)}</td><td>{totals[name]:,.0f}</td></tr>"
                for name in sorted(totals)
            )
            parts.append(
                "<h3>Fault counters</h3><table><tr><th>counter</th>"
                "<th>total</th></tr>" + body + "</table>"
            )
        warnings = [r for r in rows_all if r.get("kind") == "warning"]
        if warnings:
            counts: Dict[str, int] = {}
            for w in warnings:
                code = w.get("code", "?")
                counts[code] = counts.get(code, 0) + 1
            body = "".join(
                f"<tr><td>{_esc(code)}</td><td>{n}</td></tr>"
                for code, n in sorted(counts.items())
            )
            parts.append(
                "<h3>Structured warnings</h3><table><tr><th>code</th>"
                "<th>count</th></tr>" + body + "</table>"
            )
    if len(parts) == 1:
        parts.append(
            '<p class="note">directory holds no sweep.jsonl / '
            "metrics.jsonl</p>"
        )
    return "".join(parts)


def _delivery_bar(fraction: float) -> str:
    """One delivered-fraction bar: green for the delivered share, red
    for the lost share -- 1.0 renders as a solid green bar."""
    delivered = max(0.0, min(1.0, fraction))
    cells = (
        f'<span style="width:{delivered * 100:.2f}%;background:#5cb85c" '
        f'title="delivered {delivered:.1%}"></span>'
    )
    if delivered < 1.0:
        cells += (
            f'<span style="width:{(1 - delivered) * 100:.2f}%;'
            f'background:#d9534f" title="lost {1 - delivered:.1%}"></span>'
        )
    return f'<div class="bar" style="width:12em">{cells}</div>'


def _resilience_section(artifact: Dict[str, Any], source: Path) -> str:
    counts = artifact.get("fault_counts", [])
    curves = artifact.get("curves", {})
    blocks: List[str] = []
    for mode in curves:
        by_count = {p.get("link_faults"): p for p in curves[mode]}
        rows = []
        for count in counts:
            p = by_count.get(count)
            if p is None or p.get("failed"):
                rows.append(
                    f"<tr><td>{_esc(count)}</td>"
                    '<td colspan="5" class="note">point failed</td></tr>'
                )
                continue
            frac = p.get("delivered_fraction", 0.0)
            flags = []
            if p.get("degraded_mode"):
                flags.append("degraded")
            if p.get("packets_unroutable"):
                flags.append(f"{p['packets_unroutable']} unroutable")
            if p.get("escape_reroutes"):
                flags.append(f"{p['escape_reroutes']} reroutes")
            rows.append(
                f"<tr><td>{_esc(count)}</td>"
                f"<td>{frac:.4f} {_delivery_bar(frac)}</td>"
                f"<td>{p.get('accepted_flit_rate', 0.0):.4f}</td>"
                f"<td>{_esc(p.get('p99', '-'))}</td>"
                f"<td>{_esc(p.get('packets_lost', '-'))}</td>"
                f"<td>{_esc(', '.join(flags) or '-')}</td></tr>"
            )
        blocks.append(
            f"<h3>{_esc(mode)} routing</h3>"
            "<table><tr><th>faulted links</th><th>delivered fraction</th>"
            "<th>accepted flits/cyc</th><th>p99</th><th>lost</th>"
            "<th>notes</th></tr>" + "".join(rows) + "</table>"
        )
    return (
        "<h2>Resilience (degradation vs permanent link faults)</h2>"
        f'<p class="fingerprint">source: {_esc(source)} '
        f"(mesh V={_esc(artifact.get('total_vcs'))}, "
        f"{_esc(artifact.get('sw_alloc_arch'))}/"
        f"{_esc(artifact.get('speculation'))}, "
        f"rate {_esc(artifact.get('injection_rate'))}, "
        f"seed {_esc(artifact.get('seed'))})</p>"
        + "".join(blocks)
    )


# ----------------------------------------------------------------------
def build_perf_report(
    bench_path: Optional[Path] = None,
    history_path: Optional[Path] = None,
    metrics_dir: Optional[Path] = None,
    resilience_path: Optional[Path] = None,
) -> str:
    """Render the dashboard from whichever artifacts exist.

    Raises ``FileNotFoundError`` when none of the given inputs exists.
    """
    sections: List[str] = []
    missing: List[str] = []

    if bench_path is not None and bench_path.exists():
        try:
            report = json.loads(bench_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            sections.append(
                f'<h2>Kernel benchmark</h2><p class="note">unreadable '
                f"bench report {_esc(bench_path)}: {_esc(exc)}</p>"
            )
        else:
            sections.append(_bench_section(report, bench_path))
    elif bench_path is not None:
        missing.append(str(bench_path))

    if history_path is not None and history_path.exists():
        from ..eval.bench_history import read_history

        records = read_history(history_path)
        if records:
            sections.append(_history_section(records, history_path))
        else:
            sections.append(
                f'<h2>Bench history</h2><p class="note">ledger '
                f"{_esc(history_path)} holds no records</p>"
            )
    elif history_path is not None:
        missing.append(str(history_path))

    if metrics_dir is not None and metrics_dir.is_dir():
        sections.append(_metrics_section(metrics_dir))
    elif metrics_dir is not None:
        missing.append(str(metrics_dir))

    if resilience_path is not None and resilience_path.exists():
        try:
            artifact = json.loads(resilience_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            sections.append(
                f'<h2>Resilience</h2><p class="note">unreadable '
                f"resilience artifact {_esc(resilience_path)}: "
                f"{_esc(exc)}</p>"
            )
        else:
            sections.append(_resilience_section(artifact, resilience_path))
    elif resilience_path is not None:
        missing.append(str(resilience_path))

    if not sections:
        raise FileNotFoundError(
            "no performance artifacts found; looked for: "
            + (", ".join(missing) or "nothing (no inputs given)")
            + " -- run `repro bench --profile` and/or "
            "`repro sweep --metrics DIR` first"
        )
    for path in missing:
        sections.append(
            f'<p class="note">skipped missing input: {_esc(path)}</p>'
        )
    body = "".join(sections)
    return (
        "<!doctype html><html><head><meta charset='utf-8'>"
        "<title>repro performance report</title>"
        f"<style>{_STYLE}</style></head><body>"
        "<h1>repro performance report</h1>"
        '<p class="note">Becker &amp; Dally SC\'09 allocator study &mdash; '
        "generated by <code>repro perf report</code>; fully "
        "self-contained, no external assets.</p>"
        + body + "</body></html>"
    )
