"""Flit lifecycle tracing with Chrome trace-event export.

The tracer follows each packet's *head* flit through the network:

* ``inject``  -- head flit serialized onto the injection channel;
* ``arrive``  -- head written into a router's input buffer;
* ``va``      -- output VC granted at that router;
* ``sa``      -- switch allocation won, flit departs through the
  crossbar (for a successful speculative bid, ``va`` and ``sa`` land in
  the same cycle);
* ``eject``   -- tail flit sinks at the destination terminal.

Each router hop becomes one Chrome trace *complete* event (``ph: "X"``)
on track ``pid = router id`` / ``tid = input port``, spanning arrival
to switch grant with the VA/SA wait split in ``args``.  Each delivered
packet additionally becomes an async ``"b"``/``"e"`` pair (track
``pid = PACKET_TRACK``, ``tid = source terminal``) spanning injection
to ejection, so Perfetto shows end-to-end packet lifetimes above the
per-router swimlanes.  Timestamps are cycles, rendered by Perfetto as
microseconds.

The same bookkeeping yields a per-packet latency decomposition
(:class:`LatencyBreakdown`): source queueing vs. VC-allocation wait vs.
switch-allocation wait vs. traversal (wire + serialization) cycles.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

__all__ = ["FlitTracer", "LatencyBreakdown", "PACKET_TRACK"]

#: Synthetic pid hosting the per-packet async lifetime events (routers
#: use their own ids, which are < 10**6 for any realistic topology).
PACKET_TRACK = 1_000_000


@dataclass
class LatencyBreakdown:
    """Aggregate packet-latency decomposition, in cycles.

    ``traversal`` is everything not attributable to waiting in an
    allocation stage: link traversal, switch traversal and multi-flit
    serialization.  Per-packet: ``total = source_queue + va_wait +
    sa_wait + traversal``.
    """

    packets: int = 0
    total: float = 0.0
    source_queue: float = 0.0
    va_wait: float = 0.0
    sa_wait: float = 0.0
    traversal: float = 0.0
    hops: int = 0

    def add(
        self, total: int, source_queue: int, va_wait: int, sa_wait: int, hops: int
    ) -> None:
        self.packets += 1
        self.total += total
        self.source_queue += source_queue
        self.va_wait += va_wait
        self.sa_wait += sa_wait
        self.traversal += total - source_queue - va_wait - sa_wait
        self.hops += hops

    def _avg(self, value: float) -> float:
        return value / self.packets if self.packets else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "packets": self.packets,
            "avg_total": self._avg(self.total),
            "avg_source_queue": self._avg(self.source_queue),
            "avg_va_wait": self._avg(self.va_wait),
            "avg_sa_wait": self._avg(self.sa_wait),
            "avg_traversal": self._avg(self.traversal),
            "avg_hops": self._avg(self.hops),
        }

    def __str__(self) -> str:
        d = self.to_dict()
        return (
            f"{self.packets} packets: total {d['avg_total']:.1f} = "
            f"queue {d['avg_source_queue']:.1f} + va {d['avg_va_wait']:.1f} "
            f"+ sa {d['avg_sa_wait']:.1f} + traversal {d['avg_traversal']:.1f}"
        )


class FlitTracer:
    """Record head-flit lifecycle events; export Chrome trace JSON."""

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []
        # In-flight head position: packet id -> [router, port, vc,
        # arrive_cycle, va_cycle or None].
        self._hop: Dict[int, List[Any]] = {}
        # Injected-but-not-ejected packets: id -> lifecycle record.
        self._packets: Dict[int, Dict[str, Any]] = {}
        self.breakdown = LatencyBreakdown()
        self.dropped_events = 0  # hooks for packets injected pre-attach
        #: Added to every timestamp; a multi-run observer bumps this
        #: between runs so per-run cycle counters (which restart at 0)
        #: never overlap on the trace timeline.
        self.ts_offset = 0

    # ------------------------------------------------------------------
    # lifecycle hooks (called by SimObserver)
    # ------------------------------------------------------------------
    def packet_injected(self, terminal_id: int, packet: Any, now: int) -> None:
        self._packets[packet.pid] = {
            "src": terminal_id,
            "inject": now + self.ts_offset,
            "birth": packet.birth_time + self.ts_offset,
            "va_wait": 0,
            "sa_wait": 0,
            "hops": 0,
        }

    def head_arrived(
        self, router_id: int, port: int, vc: int, packet: Any, now: int
    ) -> None:
        self._hop[packet.pid] = [router_id, port, vc, now + self.ts_offset, None]

    def vc_granted(self, router_id: int, packet: Any, now: int) -> None:
        rec = self._hop.get(packet.pid)
        if rec is not None:
            rec[4] = now + self.ts_offset

    def head_departed(self, router_id: int, packet: Any, now: int) -> None:
        now = now + self.ts_offset
        rec = self._hop.pop(packet.pid, None)
        if rec is None:
            self.dropped_events += 1
            return
        _, port, vc, arrived, va = rec
        va = va if va is not None else now
        self.events.append(
            {
                "name": f"pkt {packet.pid}",
                "cat": "hop",
                "ph": "X",
                "ts": arrived,
                "dur": max(now - arrived, 0),
                "pid": router_id,
                "tid": port,
                "args": {
                    "packet": packet.pid,
                    "vc": vc,
                    "va_wait": va - arrived,
                    "sa_wait": now - va,
                },
            }
        )
        pkt = self._packets.get(packet.pid)
        if pkt is not None:
            pkt["va_wait"] += va - arrived
            pkt["sa_wait"] += now - va
            pkt["hops"] += 1

    def packet_ejected(self, terminal_id: int, packet: Any, now: int) -> None:
        now = now + self.ts_offset
        rec = self._packets.pop(packet.pid, None)
        if rec is None:
            self.dropped_events += 1
            return
        total = now - rec["birth"]
        source_queue = rec["inject"] - rec["birth"]
        self.breakdown.add(
            total, source_queue, rec["va_wait"], rec["sa_wait"], rec["hops"]
        )
        common = {
            "cat": "packet",
            "id": packet.pid,
            "name": "packet",
            "pid": PACKET_TRACK,
            "tid": rec["src"],
        }
        args = {
            "src": rec["src"],
            "dest": terminal_id,
            "total": total,
            "source_queue": source_queue,
            "va_wait": rec["va_wait"],
            "sa_wait": rec["sa_wait"],
            "hops": rec["hops"],
        }
        self.events.append({**common, "ph": "b", "ts": rec["inject"], "args": args})
        self.events.append({**common, "ph": "e", "ts": now})

    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Packets injected but not yet ejected (no events emitted yet)."""
        return len(self._packets)

    def to_chrome_trace(
        self, metadata: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """Chrome trace-event JSON object (Perfetto's legacy format)."""
        meta_events: List[Dict[str, Any]] = []
        pids = sorted({e["pid"] for e in self.events})
        for pid in pids:
            name = "packets" if pid == PACKET_TRACK else f"router {pid}"
            meta_events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "args": {"name": name},
                }
            )
        other: Dict[str, Any] = {
            "packets_traced": self.breakdown.packets,
            "packets_in_flight": self.in_flight,
            "dropped_events": self.dropped_events,
            "breakdown": self.breakdown.to_dict(),
        }
        if metadata:
            other.update(metadata)
        return {
            "traceEvents": meta_events + self.events,
            "displayTimeUnit": "ns",
            "otherData": other,
        }

    def export(
        self, path: "Path | str", metadata: Optional[Dict[str, Any]] = None
    ) -> Path:
        """Write the Chrome trace JSON to ``path`` and return it."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_chrome_trace(metadata)))
        return path
