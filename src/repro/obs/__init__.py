"""repro.obs -- opt-in observability for the cycle-accurate simulator.

Three layers, all zero-overhead when disabled (the simulator carries a
single ``observer is None`` check per hook site -- the null-object fast
path):

``repro.obs.metrics``
    Generic instruments (counters, gauges, histograms) behind a
    :class:`MetricsRegistry`, plus structured warnings
    (:func:`emit_warning`) that route to pluggable sinks instead of
    spamming stderr.
``repro.obs.tracing``
    A flit lifecycle tracer recording per-packet events (inject, VC
    allocation, switch grant, ejection) and exporting Chrome
    trace-event JSON loadable in Perfetto, plus a packet-latency
    breakdown (source queueing vs. allocation vs. traversal cycles).
``repro.obs.observer``
    :class:`SimObserver`, the object the simulator hooks call.  Attach
    one to a network (``run_simulation(cfg, observer=...)``) to collect
    per-router/per-VC metrics on a configurable cadence into a JSONL
    time series and/or a flit trace.

``repro.obs.profiling``
    :class:`PhaseProfiler`, the phase-attribution profiler for the
    per-cycle simulator loop (``run_simulation(cfg, profiler=...)``)
    behind the same ``profiler is None`` fast path; all simulator
    wall-clock reads live there.

``repro.obs.telemetry`` (imported lazily -- it depends on
``repro.eval``) adds structured *sweep* telemetry: a
:class:`JsonlReporter` for the sweep engine, per-run manifests, and the
``repro report`` summarizer.  ``repro.obs.perf_report`` (also lazy)
renders the self-contained HTML performance dashboard behind
``repro perf report``.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    StructuredWarning,
    add_warning_sink,
    clear_recent_warnings,
    emit_warning,
    recent_warnings,
    remove_warning_sink,
)
from .observer import NullObserver, SimObserver
from .profiling import PHASES, PROFILE_SCHEMA, PhaseProfiler, profile_point
from .tracing import FlitTracer, LatencyBreakdown

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "StructuredWarning",
    "add_warning_sink",
    "clear_recent_warnings",
    "emit_warning",
    "recent_warnings",
    "remove_warning_sink",
    "NullObserver",
    "SimObserver",
    "FlitTracer",
    "LatencyBreakdown",
    "PHASES",
    "PROFILE_SCHEMA",
    "PhaseProfiler",
    "profile_point",
    # lazily resolved from .telemetry (avoids a repro.eval import cycle)
    "JsonlReporter",
    "build_run_manifest",
    "write_run_manifest",
    "summarize_metrics_dir",
]

_TELEMETRY_NAMES = {
    "JsonlReporter",
    "build_run_manifest",
    "write_run_manifest",
    "summarize_metrics_dir",
}


def __getattr__(name: str):
    if name in _TELEMETRY_NAMES:
        from . import telemetry

        return getattr(telemetry, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
