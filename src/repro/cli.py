"""Command-line interface: ``python -m repro <command>``.

Exposes the experiment harness without writing any Python:

* ``figures``     -- list every reproducible table/figure;
* ``transitions`` -- print a VC transition matrix (Figure 4);
* ``quality``     -- matching-quality curves (Figures 7 / 12);
* ``cost``        -- synthesize allocator variants (Figures 5/6/10/11);
* ``simulate``    -- one network simulation point;
* ``sweep``       -- a latency-vs-load curve (Figures 13 / 14), with
  opt-in observability: ``--metrics DIR`` collects per-router metrics
  and sweep telemetry, ``--trace FILE`` records a Perfetto-loadable
  flit trace; hardened execution via ``--faults/--watchdog/--timeout/
  --retries/--resume``; ``--connect HOST:PORT`` computes the points on
  a ``repro serve`` job-queue server instead of locally;
* ``serve``       -- distributed sweep scheduler: shards submitted
  points across connected workers behind a shared, sharded result
  cache (docs/DISTRIBUTED.md);
* ``work``        -- one remote worker: lease points from a server,
  compute, report;
* ``faults``      -- saturation throughput vs injected fault rate per
  allocator architecture (robustness extension, beyond the paper);
* ``report``      -- summarize a ``--metrics`` telemetry directory
  (top stall sources, matching efficiency vs. injection rate);
* ``bench``       -- reference/fast/compiled kernel throughput
  benchmark (writes ``BENCH_kernel.json``; ``--dump-kernel DIR`` saves
  the generated per-design-point sources; ``--profile`` records a
  per-phase breakdown, every run appends to the bench-history ledger
  and ``--compare BASE`` diffs against a recorded run; see
  docs/PERFORMANCE.md);
* ``perf``        -- performance observatory: ``perf report`` renders a
  self-contained HTML dashboard from bench reports, the history ledger
  and sweep telemetry;
* ``verify``      -- formal verification (docs/STATIC_ANALYSIS.md):
  proves every paper design-point netlist equivalent to the behavioural
  allocators over all inputs and reachable states, checks the allocator
  safety properties the paper assumes, and (``--mutation``) measures the
  checker's own coverage by mutation testing;
* ``lint``        -- static verification (docs/STATIC_ANALYSIS.md):
  ``--netlists`` runs the gate-level DRC over every paper design point,
  ``--source`` runs the repo-invariant AST linter over ``src/repro``,
  ``--rev-guard BASE`` checks the SIMULATOR_REV discipline against a
  git base ref; findings gate CI unless baselined.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from .eval.cost import switch_allocator_costs, vc_allocator_costs
from .eval.figures import format_experiment_index
from .eval.design_points import DesignPoint
from .eval.matching import switch_matching_quality, vc_matching_quality
from .eval.netperf import latency_sweep
from .eval.runner import (
    ConsoleReporter,
    MultiReporter,
    ResultCache,
    SweepReporter,
    default_cache_path,
)
from .eval.tables import format_cost_results, format_curves, format_table
from .faults import FaultPlan, parse_fault_spec
from .netsim.simulator import SimulationConfig, run_simulation
from .obs.metrics import emit_warning
from .obs.observer import SimObserver

__all__ = ["main"]


def _positive_int(value: str) -> int:
    """argparse type: integer >= 1 (e.g. worker counts)."""
    n = int(value)
    if n < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {n}")
    return n


def _nonnegative_int(value: str) -> int:
    """argparse type: integer >= 0 (e.g. retry counts)."""
    n = int(value)
    if n < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {n}")
    return n


def _positive_float(value: str) -> float:
    """argparse type: float > 0 (e.g. wall-clock timeouts)."""
    x = float(value)
    if x <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {x}")
    return x


def _nonnegative_float(value: str) -> float:
    """argparse type: float >= 0 (e.g. retry backoff)."""
    x = float(value)
    if x < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {x}")
    return x


def _parse_hotspots(text: Optional[str]) -> Optional[List[int]]:
    """``--hotspots "3,17"`` -> ``[3, 17]`` (None passes through)."""
    if text is None:
        return None
    try:
        hotspots = [int(t) for t in text.split(",") if t.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--hotspots must be a comma list of terminal indices, "
            f"got {text!r}"
        ) from None
    if not hotspots:
        raise argparse.ArgumentTypeError("--hotspots must name at least "
                                         "one terminal")
    return hotspots


def _point(args) -> DesignPoint:
    ports = 5 if args.topology == "mesh" else 10
    return DesignPoint(args.topology, ports, args.vcs_per_class)


def _add_point_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--topology", choices=["mesh", "fbfly"], default="mesh")
    p.add_argument("--vcs-per-class", type=int, default=1, choices=[1, 2, 4])


def cmd_figures(args) -> int:
    print(format_experiment_index())
    return 0


def cmd_transitions(args) -> int:
    part = _point(args).partition
    mat = part.transition_matrix()
    rows = []
    for vin in range(part.num_vcs):
        m, r, c = part.vc_fields(vin)
        rows.append(
            [vin, f"m{m}/r{r}/c{c}",
             "".join("o" if x else "." for x in mat[vin])]
        )
    print(format_table(["in VC", "class", "legal outputs"], rows,
                       title=f"VC transitions, {part.describe()}"))
    print(f"legal: {part.num_legal_transitions()} / {part.num_vcs ** 2}")
    return 0


def cmd_quality(args) -> int:
    point = _point(args)
    rates = [float(r) for r in args.rates.split(",")]
    fn = vc_matching_quality if args.target == "vc" else switch_matching_quality
    curves = fn(point, rates=rates, num_samples=args.samples)
    print(
        format_curves(
            "req/VC/cycle",
            rates,
            {k: c.quality for k, c in curves.items()},
            title=f"{args.target} allocator matching quality, {point.label}",
        )
    )
    return 0


def cmd_cost(args) -> int:
    point = _point(args)
    if args.target == "vc":
        results = vc_allocator_costs(point)
    else:
        results = switch_allocator_costs(point)
    print(format_cost_results(results, title=f"{args.target} allocator cost, {point.label}"))
    return 0


def cmd_simulate(args) -> int:
    cfg = SimulationConfig(
        topology=args.topology,
        vcs_per_class=args.vcs_per_class,
        injection_rate=args.rate,
        sw_alloc_arch=args.sw_alloc,
        vc_alloc_arch=args.vc_alloc,
        speculation=args.speculation,
        traffic_pattern=args.pattern,
        hotspot_terminals=args.hotspots,
        warmup_cycles=args.cycles // 3,
        measure_cycles=args.cycles,
        drain_cycles=args.cycles,
        seed=args.seed,
    )
    res = run_simulation(cfg)
    print(res)
    print(
        f"injected {res.injected_flit_rate:.3f} / accepted "
        f"{res.accepted_flit_rate:.3f} flits/cycle/terminal; "
        f"speculative wins {res.speculative_wins}, "
        f"misspeculations {res.misspeculations}"
    )
    return 0


class _StatsCapture(SweepReporter):
    """Keeps the final :class:`SweepStats` for the run manifest."""

    def __init__(self) -> None:
        self.stats = None

    def sweep_finished(self, stats) -> None:
        self.stats = stats


def cmd_sweep(args) -> int:
    from dataclasses import replace

    from .obs.telemetry import (
        JsonlReporter,
        build_run_manifest,
        write_run_manifest,
    )

    try:
        faults = parse_fault_spec(args.faults) if args.faults else None
    except (ValueError, OSError) as exc:
        print(f"error: bad --faults spec: {exc}", file=sys.stderr)
        return 2
    watchdog = args.watchdog
    if watchdog is None:
        # Fault injection can deadlock the fabric; arm the watchdog by
        # default so a wedged point aborts with a diagnostic snapshot
        # instead of burning every configured cycle.
        watchdog = max(1000, args.cycles) if faults is not None else 0

    base = SimulationConfig(
        topology=args.topology,
        vcs_per_class=args.vcs_per_class,
        sw_alloc_arch=args.sw_alloc,
        vc_alloc_arch=args.vc_alloc,
        speculation=args.speculation,
        traffic_pattern=args.pattern,
        hotspot_terminals=args.hotspots,
        warmup_cycles=args.cycles // 3,
        measure_cycles=args.cycles,
        drain_cycles=args.cycles,
        seed=args.seed,
        faults=faults,
        watchdog_cycles=watchdog,
    )
    rates = [float(r) for r in args.rates.split(",")]
    configs = [replace(base, injection_rate=r) for r in rates]

    instrumented = bool(args.metrics or args.trace)
    metrics_dir = Path(args.metrics) if args.metrics else None
    jobs = args.jobs

    observer = None
    sim_fn = None
    if instrumented:
        # Instrumented points must run inline (the observer lives in
        # this process) and uncached (a cache hit would skip the hooks
        # entirely, leaving holes in the metrics/trace).
        if jobs > 1:
            emit_warning(
                "instrumented_sweep_forced_serial",
                "--metrics/--trace force jobs=1; observers cannot cross "
                "process boundaries",
                requested_jobs=jobs,
            )
            print("note: --metrics/--trace forces a serial run "
                  f"(requested --jobs {jobs})", file=sys.stderr)
            jobs = 1
        if not args.no_cache:
            emit_warning(
                "instrumented_sweep_uncached",
                "--metrics/--trace disables the result cache so every "
                "point is actually simulated under instrumentation",
            )
            print("note: --metrics/--trace disables the sweep cache",
                  file=sys.stderr)
        observer = SimObserver(
            metrics_path=(metrics_dir / "metrics.jsonl"
                          if metrics_dir is not None else None),
            trace_path=args.trace,
            sample_every=args.sample_every,
        )
        sim_fn = lambda cfg: run_simulation(cfg, observer=observer)  # noqa: E731

    scheduler = None
    if args.connect:
        if instrumented:
            print("error: --connect cannot carry --metrics/--trace "
                  "(observers cannot cross machines)", file=sys.stderr)
            return 2
        from .serve.client import RemoteScheduler

        scheduler = RemoteScheduler(args.connect)
        if not args.no_cache:
            # The server owns the shared result cache; a local disk
            # cache would just shadow it.  Note on stderr only, so
            # stdout tables stay byte-identical to a local run.
            print(f"note: --connect {args.connect} uses the server's "
                  "shared cache; the local cache file is not touched",
                  file=sys.stderr)
        args.no_cache = True

    cache = None
    if not args.no_cache and not instrumented:
        cache = ResultCache(args.cache_path or default_cache_path())

    # Any hardening/fault flag switches failure handling from "abort
    # the sweep" to "record the failure and keep going" -- a partial
    # curve plus structured failures beats no curve.
    hardened = (
        args.timeout is not None
        or args.retries
        or args.resume
        or args.checkpoint is not None
        or faults is not None
    )
    on_failure = "record" if hardened else "raise"

    checkpoint = None
    if args.resume or args.checkpoint is not None:
        from .eval.checkpoint import SweepCheckpoint, sweep_signature
        from .eval.runner import config_key

        salt = cache.salt if cache is not None else None
        keys = [config_key(cfg, salt) for cfg in configs]
        if args.checkpoint is not None:
            ckpt_path = Path(args.checkpoint)
        elif cache is not None:
            ckpt_path = cache.path.with_name(f"{cache.path.stem}.ckpt.jsonl")
        else:
            ckpt_path = Path(".repro-sweep.ckpt.jsonl")
        checkpoint = SweepCheckpoint(ckpt_path, sweep_signature(keys))
        if checkpoint.recovered:
            print(f"resume: recovered {len(checkpoint.recovered)} completed "
                  f"point(s) from {ckpt_path}", file=sys.stderr)

    capture = _StatsCapture()
    reporters = [capture]
    if args.progress:
        reporters.append(ConsoleReporter())
    if metrics_dir is not None:
        reporters.append(JsonlReporter(metrics_dir / "sweep.jsonl"))
    reporter = MultiReporter(*reporters)

    t0 = time.perf_counter()
    try:
        curve = latency_sweep(
            base, rates, stop_after_saturation=False,
            jobs=jobs, cache=cache, reporter=reporter, sim_fn=sim_fn,
            timeout=args.timeout, retries=args.retries, backoff=args.backoff,
            on_failure=on_failure, checkpoint=checkpoint, scheduler=scheduler,
        )
    except Exception as exc:
        from .serve.protocol import ProtocolError

        if scheduler is None or not isinstance(
            exc, (ConnectionError, OSError, ProtocolError)
        ):
            raise
        print(f"error: sweep server {args.connect}: {exc}", file=sys.stderr)
        return 1
    wall = time.perf_counter() - t0

    if observer is not None:
        observer.finalize(
            metadata={"config": base.to_dict(), "rates": rates}
        )

    manifest = build_run_manifest(
        configs,
        wall_time_s=wall,
        stats=capture.stats,
        cache=cache,
        command=["repro", "sweep"] + (sys.argv[2:] if len(sys.argv) > 2 else []),
    )
    if metrics_dir is not None:
        write_run_manifest(metrics_dir / "manifest.json", manifest)
    if cache is not None:
        write_run_manifest(
            cache.path.with_name(f"{cache.path.stem}.manifest.json"),
            manifest,
        )

    print(
        format_curves(
            "inj rate",
            [p.rate for p in curve.points],
            {"latency": [p.latency for p in curve.points],
             "p50": [p.p50 for p in curve.points],
             "p95": [p.p95 for p in curve.points],
             "p99": [p.p99 for p in curve.points],
             "accepted": [p.accepted for p in curve.points]},
            title=f"{args.topology} {args.sw_alloc}/{args.speculation}",
        )
    )
    print(f"zero-load {curve.zero_load:.1f} cycles, "
          f"saturation ~{curve.saturation_rate():.3f} flits/cycle")
    stats = capture.stats
    if stats is not None and stats.failures:
        detail = ", ".join(
            f"rate={f.injection_rate:g} [{f.kind}]" for f in stats.failures
        )
        print(f"failed: {stats.failed} point(s) after retries ({detail})")
        if checkpoint is not None:
            print(f"checkpoint kept for --resume: {checkpoint.path}")
    if cache is not None:
        print(f"cache: {cache.hits} hit(s), {cache.misses} miss(es) "
              f"({cache.path})")
    if metrics_dir is not None:
        print(f"telemetry: {metrics_dir}/ "
              f"(metrics.jsonl, sweep.jsonl, manifest.json)")
    if args.trace:
        print(f"trace: {args.trace} (load in https://ui.perfetto.dev)")
    return 0


def cmd_serve(args) -> int:
    """Run the distributed sweep job-queue server (docs/DISTRIBUTED.md)."""
    import asyncio
    import subprocess

    from .serve.server import SweepServer

    async def amain() -> int:
        server = SweepServer(
            host=args.host,
            port=args.port,
            state_dir=args.state_dir,
            retries=args.retries,
            backoff=args.backoff,
            lease_timeout=args.lease_timeout,
            max_requeues=args.max_requeues,
            cache_shards=args.cache_shards,
        )
        await server.start()
        # Parseable by wrapper scripts (tests/CI start with --port 0).
        print(f"serving on {server.host}:{server.port}", flush=True)
        print(f"state: {server.state_dir} "
              f"({len(server.cache)} cached result(s))", file=sys.stderr)
        workers = []
        try:
            for _ in range(args.workers):
                cmdline = [
                    sys.executable, "-m", "repro", "work",
                    "--connect", f"{server.host}:{server.port}",
                ]
                if args.worker_fn:
                    cmdline += ["--worker-fn", args.worker_fn]
                workers.append(subprocess.Popen(cmdline))
            await server.serve_forever()
        finally:
            for proc in workers:
                proc.terminate()
            for proc in workers:
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
            await server.close()
        return 0

    try:
        return asyncio.run(amain())
    except KeyboardInterrupt:
        print("serve: interrupted, state preserved for restart",
              file=sys.stderr)
        return 0


def cmd_work(args) -> int:
    """Attach one worker to a sweep server and compute leased points."""
    from .serve.protocol import ProtocolError
    from .serve.worker import run_worker

    try:
        run_worker(
            args.connect, worker_fn=args.worker_fn,
            max_points=args.max_points,
        )
    except (ConnectionError, OSError, ProtocolError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return 0
    return 0


def cmd_faults(args) -> int:
    """Saturation throughput vs injected fault rate, per allocator
    architecture.  A robustness extension beyond the paper's figures:
    the same binary-search saturation metric as ``repro sweep``, with a
    seeded :class:`~repro.faults.FaultPlan` scaled along one axis."""
    from .eval.netperf import saturation_throughput

    kind_field = {
        "vcs": "stuck_vc_rate",
        "links": "link_rate",
        "credits": "credit_drop_rate",
    }[args.kind]
    archs = [a.strip() for a in args.archs.split(",") if a.strip()]
    bad = [a for a in archs if a not in ("sep_if", "sep_of", "wf")]
    if bad or not archs:
        print(f"error: --archs must be a comma list of sep_if/sep_of/wf, "
              f"got {args.archs!r}", file=sys.stderr)
        return 2
    frates = [float(r) for r in args.rates.split(",")]

    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_path or default_cache_path())

    columns = {}
    for arch in archs:
        sats = []
        for frate in frates:
            plan = (
                FaultPlan(seed=args.seed, **{kind_field: frate})
                if frate > 0 else None
            )
            # No watchdog here on purpose: a deadlocked probe point
            # reports as saturated, which is exactly what the metric
            # should say about that load.
            base = SimulationConfig(
                topology=args.topology,
                vcs_per_class=args.vcs_per_class,
                sw_alloc_arch=arch,
                vc_alloc_arch=arch,
                speculation=args.speculation,
                traffic_pattern=args.pattern,
                warmup_cycles=args.cycles // 3,
                measure_cycles=args.cycles,
                drain_cycles=args.cycles,
                seed=args.seed,
                faults=plan,
            )
            sats.append(
                saturation_throughput(
                    base, iterations=args.iterations, cache=cache
                )
            )
        columns[arch] = sats

    print(
        format_curves(
            f"{args.kind} fault rate",
            frates,
            columns,
            title=(f"saturation throughput vs {args.kind} fault rate "
                   f"({args.topology}, {args.speculation} speculation)"),
        )
    )
    if cache is not None:
        print(f"cache: {cache.hits} hit(s), {cache.misses} miss(es) "
              f"({cache.path})")
    return 0


def cmd_resilience(args) -> int:
    """Degradation curves vs permanent link faults, with and without
    fault-tolerant routing (docs/ROBUSTNESS.md)."""
    from .eval.checkpoint import SweepCheckpoint, sweep_signature
    from .eval.resilience import (
        RESILIENCE_MODES,
        campaign_configs,
        format_resilience,
        full_delivery_violations,
        run_resilience_campaign,
        write_resilience_artifact,
    )
    from .eval.runner import config_key

    try:
        counts = [int(c) for c in args.counts.split(",")]
    except ValueError:
        print(f"error: --counts must be a comma list of integers, "
              f"got {args.counts!r}", file=sys.stderr)
        return 2
    modes = [m.strip() for m in args.modes.split(",") if m.strip()]
    bad = [m for m in modes if m not in RESILIENCE_MODES]
    if bad or not modes:
        print(f"error: --modes must be a comma list of "
              f"{'/'.join(RESILIENCE_MODES)}, got {args.modes!r}",
              file=sys.stderr)
        return 2

    campaign = dict(
        fault_counts=counts,
        modes=modes,
        injection_rate=args.rate,
        total_vcs=args.total_vcs,
        sw_alloc_arch=args.sw_alloc,
        vc_alloc_arch=args.vc_alloc,
        speculation=args.speculation,
        cycles=args.cycles,
        seed=args.seed,
    )
    try:
        configs = [cfg for _, _, cfg in campaign_configs(**campaign)]
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_path or default_cache_path())

    checkpoint = None
    if args.resume or args.checkpoint is not None:
        salt = cache.salt if cache is not None else None
        keys = [config_key(cfg, salt) for cfg in configs]
        if args.checkpoint is not None:
            ckpt_path = Path(args.checkpoint)
        elif cache is not None:
            ckpt_path = cache.path.with_name(
                f"{cache.path.stem}.resilience.ckpt.jsonl"
            )
        else:
            ckpt_path = Path(".repro-resilience.ckpt.jsonl")
        checkpoint = SweepCheckpoint(ckpt_path, sweep_signature(keys))
        if checkpoint.recovered:
            print(f"resume: recovered {len(checkpoint.recovered)} completed "
                  f"point(s) from {ckpt_path}", file=sys.stderr)

    capture = _StatsCapture()
    reporters = [capture]
    if args.progress:
        reporters.append(ConsoleReporter())
    reporter = MultiReporter(*reporters)

    artifact = run_resilience_campaign(
        **campaign,
        jobs=args.jobs,
        cache=cache,
        reporter=reporter,
        timeout=args.timeout,
        retries=args.retries,
        backoff=args.backoff,
        checkpoint=checkpoint,
    )
    if args.output is not None:
        write_resilience_artifact(artifact, Path(args.output))
        print(f"wrote {args.output}", file=sys.stderr)

    print(format_resilience(artifact))
    stats = capture.stats
    if stats is not None and stats.failures:
        print(f"failed: {stats.failed} point(s) after retries")
        if checkpoint is not None:
            print(f"checkpoint kept for --resume: {checkpoint.path}")
    if cache is not None:
        print(f"cache: {cache.hits} hit(s), {cache.misses} miss(es) "
              f"({cache.path})")

    if args.require_full_delivery is not None:
        problems = full_delivery_violations(
            artifact, args.require_full_delivery
        )
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}", file=sys.stderr)
            return 1
        print(f"full delivery holds for ft_dor up to "
              f"{args.require_full_delivery} link fault(s)")
    return 0


def cmd_bench(args) -> int:
    """Kernel throughput benchmark (reference / fast / compiled)."""
    from .eval.bench_history import (
        append_history,
        build_history_record,
        format_compare,
        load_base,
    )
    from .eval.kernel_bench import format_bench, run_kernel_bench, write_report
    from .netsim.codegen import KERNELS, iter_template_sources

    kernels = list(args.kernel)
    unknown = [k for k in kernels if k not in KERNELS]
    if unknown:
        print(
            f"error: unknown kernel(s) {', '.join(map(repr, unknown))} "
            f"(available: {', '.join(KERNELS)})",
            file=sys.stderr,
        )
        return 2

    if args.dump_kernel is not None:
        dump_dir = Path(args.dump_kernel)
        dump_dir.mkdir(parents=True, exist_ok=True)
        count = 0
        for slug, source in iter_template_sources():
            (dump_dir / f"{slug}.py").write_text(source)
            count += 1
        print(f"dumped {count} generated kernel source(s) to {dump_dir}/",
              file=sys.stderr)
        if args.dump_only:
            return 0
    elif args.dump_only:
        print("error: --dump-only requires --dump-kernel DIR",
              file=sys.stderr)
        return 2

    base = None
    if args.compare is not None:
        # Fail before the (minutes-long) benchmark if the base is bad.
        try:
            base = load_base(Path(args.compare))
        except (OSError, ValueError) as exc:
            print(f"error: bad --compare base: {exc}", file=sys.stderr)
            return 2

    progress = (lambda msg: print(msg, file=sys.stderr)) if args.progress else None
    report = run_kernel_bench(
        quick=args.quick, progress=progress, kernels=kernels or None,
        profile=args.profile,
    )
    write_report(report, Path(args.output))
    print(format_bench(report))
    print(f"wrote {args.output}")

    record = build_history_record(report)
    if not args.no_history:
        ledger = append_history(record, Path(args.history))
        print(f"appended history record to {ledger}")
    if base is not None:
        print(format_compare(record, base))
    return 0


def cmd_perf_report(args) -> int:
    """Render the self-contained HTML performance dashboard."""
    from .obs.perf_report import build_perf_report

    try:
        html = build_perf_report(
            bench_path=Path(args.bench) if args.bench else None,
            history_path=Path(args.history) if args.history else None,
            metrics_dir=Path(args.metrics) if args.metrics else None,
            resilience_path=(Path(args.resilience)
                             if args.resilience else None),
        )
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    out = Path(args.output)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(html)
    print(f"wrote {out}")
    return 0


def cmd_lint(args) -> int:
    """Static verification: netlist DRC + source linter + rev guard."""
    from .analysis import (
        Baseline,
        DrcConfig,
        check_baseline_ratchet,
        check_simulator_rev,
        format_findings,
        lint_generated_kernels,
        lint_paper_netlists,
        lint_source_tree,
    )
    from .analysis.findings import findings_to_json

    run_netlists = args.netlists
    run_source = args.source
    run_rev = args.rev_guard is not None
    run_ratchet = args.ratchet is not None
    if not (run_netlists or run_source or run_rev or run_ratchet):
        run_netlists = run_source = True

    findings = []
    meta = {}
    if run_netlists:
        progress = (
            (lambda msg: print(msg, file=sys.stderr)) if args.progress else None
        )
        drc_kwargs = {}
        if args.max_cells is not None:
            drc_kwargs["max_cells"] = args.max_cells
        drc_findings, skipped, checked = lint_paper_netlists(
            config=DrcConfig(),
            quick=args.quick,
            progress=progress,
            **drc_kwargs,
        )
        findings.extend(drc_findings)
        meta["netlists_checked"] = checked
        meta["netlists_skipped"] = [
            {"label": label, "reason": reason} for label, reason in skipped
        ]
        for label, reason in skipped:
            print(f"note: skipped {label}: {reason}", file=sys.stderr)
    if run_source:
        src_root = Path(args.src_root) if args.src_root else Path(__file__).parent
        findings.extend(lint_source_tree(src_root))
        # The compiled kernel's generated modules never exist on disk;
        # render the template design points and lint them too.
        findings.extend(lint_generated_kernels())
        meta["source_root"] = str(src_root)
    if run_rev:
        findings.extend(check_simulator_rev(Path.cwd(), args.rev_guard))

    baseline_path = args.baseline
    if baseline_path is None and Path("lint-baseline.json").exists():
        baseline_path = "lint-baseline.json"
    if run_ratchet:
        findings.extend(
            check_baseline_ratchet(
                Path.cwd(),
                baseline_path=baseline_path or "lint-baseline.json",
                base_ref=args.ratchet,
            )
        )
    if baseline_path is not None:
        try:
            baseline = Baseline.load(Path(baseline_path))
        except (OSError, ValueError) as exc:
            print(f"error: bad baseline {baseline_path}: {exc}", file=sys.stderr)
            return 2
    else:
        baseline = Baseline()
    unsuppressed, suppressed = baseline.partition(findings)
    if run_netlists or run_source:
        # Staleness is only meaningful when the stages that produce
        # baseline-matched findings actually ran.
        for entry in baseline.unused_entries():
            print(
                f"note: stale baseline entry matched nothing: {entry}",
                file=sys.stderr,
            )

    if args.write_baseline:
        new = Baseline(
            [
                {
                    "rule": f.rule,
                    "scope": f.scope,
                    "location": f.location,
                    "reason": "baselined by --write-baseline",
                }
                for f in unsuppressed
            ]
        )
        new.dump(Path(args.write_baseline))
        print(f"wrote {len(new.entries)} suppression(s) to "
              f"{args.write_baseline}", file=sys.stderr)

    if args.format == "json":
        report = findings_to_json(unsuppressed, suppressed, meta=meta)
    else:
        report = format_findings(unsuppressed, suppressed=len(suppressed))
    if args.output:
        Path(args.output).write_text(report + "\n")
        print(f"wrote {args.output}")
    else:
        print(report)
    return 1 if unsuppressed else 0


def cmd_verify(args) -> int:
    """Formal verification: equivalence proofs, properties, mutation."""
    from .analysis import Baseline, format_findings
    from .analysis.findings import findings_to_json
    from .verify import run_mutation_campaign, verify_paper_netlists

    run_points = args.points
    run_props = args.properties
    run_mutation = args.mutation
    if not (run_points or run_props or run_mutation):
        run_points = run_props = True

    progress = (
        (lambda msg: print(msg, file=sys.stderr)) if args.progress else None
    )
    findings = []
    meta = {}
    if run_points or run_props:
        kwargs = {}
        if args.max_cells is not None:
            kwargs["max_cells"] = args.max_cells
        found, skipped, checked = verify_paper_netlists(
            include_vc=run_points,
            include_sw=run_points,
            include_e2e=run_points,
            include_models=run_props,
            quick=args.quick,
            progress=progress,
            **kwargs,
        )
        findings.extend(found)
        meta["netlists_proved"] = checked
        meta["netlists_skipped"] = [
            {"label": label, "reason": reason} for label, reason in skipped
        ]
        for label, reason in skipped:
            print(f"note: skipped {label}: {reason}", file=sys.stderr)

    mutation_failed = False
    if run_mutation:
        report = run_mutation_campaign(
            seed=args.seed, mutants_per_target=args.mutants
        )
        meta["mutation"] = {
            "total": report.total,
            "killed": report.killed,
            "kill_rate": report.kill_rate,
            "min_kill_rate": args.min_kill_rate,
            "survivors": [
                {"target": o.target, "mutant": o.mutant_index,
                 "description": o.description}
                for o in report.survivors
            ],
        }
        print(f"mutation: {report.summary()}", file=sys.stderr)
        for o in report.survivors:
            print(f"note: surviving mutant {o.target}#{o.mutant_index}: "
                  f"{o.description}", file=sys.stderr)
        if report.kill_rate < args.min_kill_rate:
            mutation_failed = True
            print(f"FAIL: mutation kill rate {report.kill_rate:.1%} below "
                  f"the {args.min_kill_rate:.0%} floor", file=sys.stderr)

    baseline_path = args.baseline
    if baseline_path is None and Path("verify-baseline.json").exists():
        baseline_path = "verify-baseline.json"
    if baseline_path is not None:
        try:
            baseline = Baseline.load(Path(baseline_path))
        except (OSError, ValueError) as exc:
            print(f"error: bad baseline {baseline_path}: {exc}",
                  file=sys.stderr)
            return 2
    else:
        baseline = Baseline()
    unsuppressed, suppressed = baseline.partition(findings)
    for entry in baseline.unused_entries():
        print(f"note: stale baseline entry matched nothing: {entry}",
              file=sys.stderr)

    if args.write_baseline:
        new = Baseline(
            [
                {
                    "rule": f.rule,
                    "scope": f.scope,
                    "location": f.location,
                    "reason": "baselined by --write-baseline",
                }
                for f in unsuppressed
            ]
        )
        new.dump(Path(args.write_baseline))
        print(f"wrote {len(new.entries)} suppression(s) to "
              f"{args.write_baseline}", file=sys.stderr)

    if args.json:
        report_text = findings_to_json(unsuppressed, suppressed, meta=meta)
    else:
        report_text = format_findings(
            unsuppressed, suppressed=len(suppressed),
            title="formal verification findings",
        )
    if args.output:
        Path(args.output).write_text(report_text + "\n")
        print(f"wrote {args.output}")
    else:
        print(report_text)
    return 1 if (unsuppressed or mutation_failed) else 0


def cmd_report(args) -> int:
    from .obs.telemetry import EmptyTelemetryError, summarize_metrics_dir

    try:
        print(summarize_metrics_dir(Path(args.dir), top=args.top))
    except (FileNotFoundError, EmptyTelemetryError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Becker & Dally SC'09 allocator study, reproduced.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("figures", help="list every reproducible figure")
    p.set_defaults(fn=cmd_figures)

    p = sub.add_parser("transitions", help="VC transition matrix (Fig 4)")
    _add_point_args(p)
    p.set_defaults(fn=cmd_transitions)

    p = sub.add_parser("quality", help="matching quality (Figs 7/12)")
    _add_point_args(p)
    p.add_argument("--target", choices=["vc", "switch"], default="switch")
    p.add_argument("--rates", default="0.1,0.2,0.4,0.6,0.8,1.0")
    p.add_argument("--samples", type=int, default=1000)
    p.set_defaults(fn=cmd_quality)

    p = sub.add_parser("cost", help="synthesis cost (Figs 5/6/10/11)")
    _add_point_args(p)
    p.add_argument("--target", choices=["vc", "switch"], default="vc")
    p.set_defaults(fn=cmd_cost)

    for name, helptext in (
        ("simulate", "one network simulation point"),
        ("sweep", "latency vs load (Figs 13/14)"),
    ):
        p = sub.add_parser(name, help=helptext)
        _add_point_args(p)
        p.add_argument("--sw-alloc", choices=["sep_if", "sep_of", "wf"],
                       default="sep_if")
        p.add_argument("--vc-alloc", choices=["sep_if", "sep_of", "wf"],
                       default="sep_if")
        p.add_argument("--speculation",
                       choices=["nonspec", "pessimistic", "conventional"],
                       default="pessimistic")
        p.add_argument("--pattern", default="uniform")
        p.add_argument("--hotspots", type=_parse_hotspots, default=None,
                       metavar="T0,T1,...",
                       help="hotspot terminal indices for --pattern "
                            "hotspot (default: terminals 0 and N/2)")
        p.add_argument("--cycles", type=int, default=2000)
        p.add_argument("--seed", type=int, default=1)
        if name == "simulate":
            p.add_argument("--rate", type=float, default=0.2)
            p.set_defaults(fn=cmd_simulate)
        else:
            p.add_argument("--rates", default="0.05,0.15,0.25,0.35")
            p.add_argument("--jobs", type=_positive_int, default=1,
                           help="worker processes (1 = serial; results "
                                "are identical either way)")
            p.add_argument("--no-cache", action="store_true",
                           help="always re-simulate; do not touch the "
                                "sweep result cache")
            p.add_argument("--cache-path", default=None,
                           help="sweep cache file (default: "
                                "$REPRO_SWEEP_CACHE or "
                                "~/.cache/repro-noc-sweeps.json)")
            p.add_argument("--progress", action="store_true",
                           help="report per-point progress on stderr")
            p.add_argument("--metrics", default=None, metavar="DIR",
                           help="collect per-router metrics + sweep "
                                "telemetry into DIR (metrics.jsonl, "
                                "sweep.jsonl, manifest.json); forces a "
                                "serial, uncached run")
            p.add_argument("--trace", default=None, metavar="FILE",
                           help="record a flit-lifecycle trace to FILE "
                                "(Chrome trace-event JSON; open in "
                                "Perfetto); forces a serial, uncached run")
            p.add_argument("--sample-every", type=int, default=100,
                           metavar="N",
                           help="metrics sampling cadence in cycles "
                                "(default: 100)")
            p.add_argument("--faults", default=None, metavar="PLAN",
                           help="inject faults: a JSON FaultPlan file or "
                                "a compact spec like "
                                "'links=0.01,vcs=0.02,drop=0.001,seed=7'")
            p.add_argument("--watchdog", type=int, default=None, metavar="N",
                           help="abort a point after N cycles without "
                                "forward progress (default: off, or "
                                "max(1000, --cycles) when --faults is "
                                "given; 0 disables)")
            p.add_argument("--timeout", type=_positive_float, default=None,
                           metavar="SECONDS",
                           help="per-point wall-clock limit; a point "
                                "still running is killed and retried "
                                "(implies worker processes)")
            p.add_argument("--retries", type=_nonnegative_int, default=0,
                           metavar="K",
                           help="re-run a crashed/timed-out/failed point "
                                "up to K times before recording a "
                                "failure (default: 0)")
            p.add_argument("--backoff", type=_nonnegative_float, default=1.0,
                           metavar="SECONDS",
                           help="base retry delay, doubled per attempt "
                                "(default: 1.0)")
            p.add_argument("--resume", action="store_true",
                           help="journal completed points to a per-sweep "
                                "checkpoint and recover them after an "
                                "interrupted run")
            p.add_argument("--checkpoint", default=None, metavar="FILE",
                           help="checkpoint journal path (implies "
                                "--resume; default: derived from the "
                                "cache path)")
            p.add_argument("--connect", default=None, metavar="HOST:PORT",
                           help="compute pending points on a 'repro "
                                "serve' job-queue server instead of "
                                "locally (results are bit-identical; "
                                "see docs/DISTRIBUTED.md)")
            p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser(
        "serve",
        help="distributed sweep job-queue server (docs/DISTRIBUTED.md)")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default: 127.0.0.1; use 0.0.0.0 "
                        "to accept remote workers)")
    p.add_argument("--port", type=_nonnegative_int, default=0,
                   help="TCP port (default: 0 = pick a free port and "
                        "print it)")
    p.add_argument("--state-dir", default=".repro-serve", metavar="DIR",
                   help="server state: sharded result cache, per-sweep "
                        "checkpoint journals, telemetry (default: "
                        ".repro-serve)")
    p.add_argument("--workers", type=_nonnegative_int, default=0,
                   metavar="N",
                   help="also spawn N local 'repro work' processes "
                        "attached to this server (default: 0)")
    p.add_argument("--retries", type=_nonnegative_int, default=1,
                   metavar="K",
                   help="re-queue a point whose worker reported an "
                        "exception up to K times (default: 1)")
    p.add_argument("--backoff", type=_nonnegative_float, default=0.5,
                   metavar="SECONDS",
                   help="base re-queue delay after a reported failure, "
                        "doubled per attempt (default: 0.5)")
    p.add_argument("--lease-timeout", type=_positive_float, default=600.0,
                   metavar="SECONDS",
                   help="re-queue a leased point if no result arrives "
                        "within this budget (default: 600)")
    p.add_argument("--max-requeues", type=_nonnegative_int, default=3,
                   metavar="K",
                   help="give up on a point after K lost leases "
                        "(worker deaths/timeouts; default: 3)")
    p.add_argument("--cache-shards", type=_positive_int, default=8,
                   metavar="N",
                   help="shard count of the shared result cache "
                        "(default: 8)")
    p.add_argument("--worker-fn", default=None, metavar="MOD:FN",
                   help="compute function for --workers subprocesses "
                        "(default: the real simulator worker)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "work",
        help="attach a worker to a 'repro serve' server")
    p.add_argument("--connect", required=True, metavar="HOST:PORT",
                   help="server address (printed by 'repro serve')")
    p.add_argument("--worker-fn", default=None, metavar="MOD:FN",
                   help="compute function, as 'pkg.module:callable' "
                        "(default: the real simulator worker)")
    p.add_argument("--max-points", type=_positive_int, default=None,
                   metavar="N",
                   help="exit after computing N points (default: serve "
                        "until the server goes away)")
    p.set_defaults(fn=cmd_work)

    p = sub.add_parser(
        "faults",
        help="saturation throughput vs fault rate (robustness extension)")
    _add_point_args(p)
    p.add_argument("--archs", default="sep_if,sep_of,wf",
                   help="comma list of allocator architectures "
                        "(default: sep_if,sep_of,wf)")
    p.add_argument("--kind", choices=["vcs", "links", "credits"],
                   default="vcs",
                   help="fault axis to scale: stuck VCs, transient link "
                        "faults or dropped credits (default: vcs)")
    p.add_argument("--rates", default="0.0,0.02,0.05,0.1",
                   help="comma list of fault rates (default: "
                        "0.0,0.02,0.05,0.1)")
    p.add_argument("--speculation",
                   choices=["nonspec", "pessimistic", "conventional"],
                   default="pessimistic")
    p.add_argument("--pattern", default="uniform")
    p.add_argument("--cycles", type=int, default=1000)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--iterations", type=int, default=5,
                   help="binary-search depth per saturation probe "
                        "(default: 5)")
    p.add_argument("--no-cache", action="store_true",
                   help="always re-simulate; do not touch the sweep "
                        "result cache")
    p.add_argument("--cache-path", default=None,
                   help="sweep cache file (default: $REPRO_SWEEP_CACHE "
                        "or ~/.cache/repro-noc-sweeps.json)")
    p.set_defaults(fn=cmd_faults)

    p = sub.add_parser(
        "resilience",
        help="degradation curves vs permanent link faults, with and "
             "without fault-tolerant routing (docs/ROBUSTNESS.md)")
    p.add_argument("--counts", default="0,1,2,4,8",
                   help="comma list of faulted-link counts "
                        "(default: 0,1,2,4,8)")
    p.add_argument("--modes", default="default,ft_dor",
                   help="comma list of routing modes to compare "
                        "(default: default,ft_dor)")
    p.add_argument("--rate", type=float, default=0.05,
                   help="injection rate in flits/cycle/terminal "
                        "(default: 0.05 -- well below saturation, so "
                        "lost delivery is attributable to the faults)")
    p.add_argument("--total-vcs", type=int, default=8, choices=[4, 8, 16],
                   help="total VCs per port, held fixed across modes "
                        "(ft_dor spends half on the escape layer; "
                        "default: 8)")
    p.add_argument("--sw-alloc", choices=["sep_if", "sep_of", "wf"],
                   default="sep_if")
    p.add_argument("--vc-alloc", choices=["sep_if", "sep_of", "wf"],
                   default="sep_if")
    p.add_argument("--speculation",
                   choices=["nonspec", "pessimistic", "conventional"],
                   default="pessimistic")
    p.add_argument("--cycles", type=int, default=1000)
    p.add_argument("--seed", type=int, default=1,
                   help="seeds both the traffic and the faulted-link "
                        "selection (default: 1)")
    p.add_argument("--jobs", type=_positive_int, default=1,
                   help="worker processes (1 = serial; results are "
                        "identical either way)")
    p.add_argument("--no-cache", action="store_true",
                   help="always re-simulate; do not touch the sweep "
                        "result cache")
    p.add_argument("--cache-path", default=None,
                   help="sweep cache file (default: $REPRO_SWEEP_CACHE "
                        "or ~/.cache/repro-noc-sweeps.json)")
    p.add_argument("--progress", action="store_true",
                   help="report per-point progress on stderr")
    p.add_argument("--timeout", type=_positive_float, default=None,
                   metavar="SECONDS",
                   help="per-point wall-clock limit (implies worker "
                        "processes)")
    p.add_argument("--retries", type=_nonnegative_int, default=0,
                   metavar="K",
                   help="re-run a crashed/timed-out point up to K times "
                        "before recording a failure (default: 0)")
    p.add_argument("--backoff", type=_nonnegative_float, default=1.0,
                   metavar="SECONDS",
                   help="base retry delay, doubled per attempt "
                        "(default: 1.0)")
    p.add_argument("--resume", action="store_true",
                   help="journal completed points to a checkpoint and "
                        "recover them after an interrupted run")
    p.add_argument("--checkpoint", default=None, metavar="FILE",
                   help="checkpoint journal path (implies --resume)")
    p.add_argument("--output", default=None, metavar="FILE",
                   help="write the repro/resilience/v1 JSON artifact "
                        "to FILE (render it with `repro perf report "
                        "--resilience FILE`)")
    p.add_argument("--require-full-delivery", type=_nonnegative_int,
                   default=None, metavar="K",
                   help="exit nonzero unless ft_dor delivers every "
                        "offered packet (no degraded-mode trip) for "
                        "every point with at most K faulted links "
                        "(the CI resilience gate)")
    p.set_defaults(fn=cmd_resilience)

    p = sub.add_parser(
        "bench",
        help="kernel throughput benchmark (BENCH_kernel.json)")
    p.add_argument("--quick", action="store_true",
                   help="short windows, mesh points only (CI smoke)")
    p.add_argument("--output", default="BENCH_kernel.json",
                   help="report path (default: BENCH_kernel.json)")
    p.add_argument("--kernel", action="append", default=[], metavar="NAME",
                   help="kernel to time (repeatable; validated against "
                        "the kernel registry; default: all kernels)")
    p.add_argument("--dump-kernel", default=None, metavar="DIR",
                   help="write the generated compiled-kernel source for "
                        "every template design point into DIR before "
                        "benchmarking")
    p.add_argument("--dump-only", action="store_true",
                   help="with --dump-kernel: dump the sources and exit "
                        "without benchmarking")
    p.add_argument("--progress", action="store_true",
                   help="report per-point results on stderr as they land")
    p.add_argument("--profile", action="store_true",
                   help="run one extra instrumented pass per point per "
                        "kernel and record the per-phase wall-time "
                        "breakdown in the report (timed passes stay "
                        "uninstrumented)")
    p.add_argument("--history",
                   default="benchmarks/results/BENCH_history.jsonl",
                   metavar="FILE",
                   help="append-only bench-history ledger (default: "
                        "benchmarks/results/BENCH_history.jsonl)")
    p.add_argument("--no-history", action="store_true",
                   help="do not append this run to the history ledger")
    p.add_argument("--compare", default=None, metavar="BASE",
                   help="diff this run against BASE: a bench report JSON "
                        "or a history ledger (uses its latest record)")
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "lint",
        help="static verification: netlist DRC, source linter, rev guard")
    p.add_argument("--netlists", action="store_true",
                   help="run the gate-level DRC over every paper design "
                        "point (default: netlists + source)")
    p.add_argument("--source", action="store_true",
                   help="run the repo-invariant AST linter over src/repro "
                        "and the rendered compiled-kernel templates")
    p.add_argument("--rev-guard", default=None, metavar="BASE_REF",
                   help="check the SIMULATOR_REV discipline for changes "
                        "since BASE_REF (e.g. origin/main)")
    p.add_argument("--ratchet", nargs="?", const="HEAD", default=None,
                   metavar="BASE_REF",
                   help="fail if the baseline gained suppressions vs its "
                        "committed version at BASE_REF (default when the "
                        "flag is bare: HEAD)")
    p.add_argument("--baseline", default=None, metavar="PATH",
                   help="suppression file for accepted findings (default: "
                        "lint-baseline.json in the working directory, if "
                        "present)")
    p.add_argument("--write-baseline", default=None, metavar="PATH",
                   help="write the current unsuppressed findings out as a "
                        "new baseline file")
    p.add_argument("--format", choices=["text", "json"], default="text",
                   help="report format (default: text)")
    p.add_argument("--output", default=None, metavar="FILE",
                   help="write the report to FILE instead of stdout")
    p.add_argument("--quick", action="store_true",
                   help="DRC the smallest mesh design point only (smoke)")
    p.add_argument("--max-cells", type=_positive_int, default=None,
                   help="synthesis capacity model for the DRC matrix "
                        "(default: the synthesis flow's budget)")
    p.add_argument("--src-root", default=None, metavar="DIR",
                   help="package directory for --source (default: the "
                        "installed repro package)")
    p.add_argument("--progress", action="store_true",
                   help="report per-netlist progress on stderr")
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser(
        "verify",
        help="formal verification: gate/behavioural equivalence proofs, "
             "allocator properties, mutation coverage "
             "(docs/STATIC_ANALYSIS.md)")
    p.add_argument("--points", action="store_true",
                   help="prove every paper design-point netlist against "
                        "the behavioural models (components + end-to-end; "
                        "default: points + properties)")
    p.add_argument("--properties", action="store_true",
                   help="check the model-level property layer: oracle "
                        "cross-validation and the round-robin starvation "
                        "bound")
    p.add_argument("--mutation", action="store_true",
                   help="run the mutation self-test of the checker and "
                        "gate on --min-kill-rate")
    p.add_argument("--mutants", type=_positive_int, default=25,
                   metavar="N",
                   help="mutants per target for --mutation (default: 25)")
    p.add_argument("--min-kill-rate", type=float, default=0.95,
                   metavar="R",
                   help="minimum mutation kill rate for --mutation "
                        "(default: 0.95)")
    p.add_argument("--seed", type=int, default=0,
                   help="mutation campaign seed (default: 0)")
    p.add_argument("--quick", action="store_true",
                   help="smallest design point and reduced widths (smoke)")
    p.add_argument("--max-cells", type=_positive_int, default=None,
                   help="synthesis capacity model for the design-point "
                        "matrix (default: the synthesis flow's budget)")
    p.add_argument("--baseline", default=None, metavar="PATH",
                   help="suppression file for accepted findings (default: "
                        "verify-baseline.json in the working directory, "
                        "if present)")
    p.add_argument("--write-baseline", default=None, metavar="PATH",
                   help="write the current unsuppressed findings out as "
                        "a new baseline file")
    p.add_argument("--json", action="store_true",
                   help="emit the machine-readable JSON report (the CI "
                        "artifact format)")
    p.add_argument("--output", default=None, metavar="FILE",
                   help="write the report to FILE instead of stdout")
    p.add_argument("--progress", action="store_true",
                   help="report per-stage progress on stderr")
    p.set_defaults(fn=cmd_verify)

    p = sub.add_parser(
        "report", help="summarize a --metrics telemetry directory")
    p.add_argument("dir", help="directory written by `repro sweep --metrics`")
    p.add_argument("--top", type=int, default=5,
                   help="number of stall-source routers to show")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser(
        "perf",
        help="performance observatory (docs/PERFORMANCE.md)")
    perf_sub = p.add_subparsers(dest="perf_command", required=True)
    pr = perf_sub.add_parser(
        "report",
        help="render a self-contained HTML performance dashboard from "
             "bench reports, the history ledger and sweep telemetry")
    pr.add_argument("--bench", default="BENCH_kernel.json", metavar="FILE",
                    help="bench report to render (default: "
                         "BENCH_kernel.json; missing file is skipped)")
    pr.add_argument("--history",
                    default="benchmarks/results/BENCH_history.jsonl",
                    metavar="FILE",
                    help="history ledger to render (default: "
                         "benchmarks/results/BENCH_history.jsonl; missing "
                         "file is skipped)")
    pr.add_argument("--metrics", default=None, metavar="DIR",
                    help="sweep telemetry directory to render (optional)")
    pr.add_argument("--resilience", default=None, metavar="FILE",
                    help="resilience artifact (`repro resilience "
                         "--output`) to render as a degradation panel "
                         "(optional)")
    pr.add_argument("--output", default="perf_report.html", metavar="FILE",
                    help="output HTML path (default: perf_report.html)")
    pr.set_defaults(fn=cmd_perf_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
